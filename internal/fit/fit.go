// Package fit provides the small regression substrate used to recover the
// paper's styled functional forms (m(t) = e^{−αt}, λ(φ) = e^{−βφ}) from the
// flow-level simulator's measurements: ordinary least squares on a line, a
// log-linear exponential fit, and the coefficient of determination.
package fit

import (
	"errors"
	"math"
)

// Line is a fitted affine model y = Intercept + Slope·x.
type Line struct {
	Slope, Intercept float64
	R2               float64
}

// ErrDegenerate is returned when a fit has too few usable points or no
// variance in x.
var ErrDegenerate = errors.New("fit: degenerate input")

// Linear fits y = a + b·x by ordinary least squares.
func Linear(x, y []float64) (Line, error) {
	if len(x) != len(y) || len(x) < 2 {
		return Line{}, ErrDegenerate
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Line{}, ErrDegenerate
	}
	b := sxy / sxx
	a := my - b*mx
	r2 := 1.0
	if syy > 0 {
		ssRes := 0.0
		for i := range x {
			e := y[i] - (a + b*x[i])
			ssRes += e * e
		}
		r2 = 1 - ssRes/syy
	}
	return Line{Slope: b, Intercept: a, R2: r2}, nil
}

// Exponential is a fitted model y = A·e^{B·x}.
type Exponential struct {
	A, B float64
	R2   float64 // R² of the log-linear fit
}

// Exp fits y = A·e^{Bx} by least squares on log y, dropping nonpositive
// observations (which carry no information about an exponential).
func Exp(x, y []float64) (Exponential, error) {
	var xs, ls []float64
	for i := range x {
		if i < len(y) && y[i] > 0 {
			xs = append(xs, x[i])
			ls = append(ls, math.Log(y[i]))
		}
	}
	line, err := Linear(xs, ls)
	if err != nil {
		return Exponential{}, err
	}
	return Exponential{A: math.Exp(line.Intercept), B: line.Slope, R2: line.R2}, nil
}

// R2 computes the coefficient of determination of predictions yhat against
// observations y.
func R2(y, yhat []float64) float64 {
	if len(y) != len(yhat) || len(y) == 0 {
		return math.NaN()
	}
	my := 0.0
	for _, v := range y {
		my += v
	}
	my /= float64(len(y))
	var ssTot, ssRes float64
	for i := range y {
		ssTot += (y[i] - my) * (y[i] - my)
		ssRes += (y[i] - yhat[i]) * (y[i] - yhat[i])
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return math.NaN()
	}
	return 1 - ssRes/ssTot
}
