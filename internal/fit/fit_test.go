package fit

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestLinearExact(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7} // y = 1 + 2x
	l, err := Linear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.Slope-2) > 1e-12 || math.Abs(l.Intercept-1) > 1e-12 {
		t.Fatalf("fit %+v", l)
	}
	if math.Abs(l.R2-1) > 1e-12 {
		t.Fatalf("R² = %v, want 1", l.R2)
	}
}

func TestLinearNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var x, y []float64
	for i := 0; i < 200; i++ {
		xi := float64(i) / 20
		x = append(x, xi)
		y = append(y, 0.5+1.5*xi+0.01*rng.NormFloat64())
	}
	l, err := Linear(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l.Slope-1.5) > 0.01 || math.Abs(l.Intercept-0.5) > 0.01 {
		t.Fatalf("fit %+v", l)
	}
	if l.R2 < 0.999 {
		t.Fatalf("R² = %v", l.R2)
	}
}

func TestLinearDegenerate(t *testing.T) {
	if _, err := Linear([]float64{1}, []float64{1}); !errors.Is(err, ErrDegenerate) {
		t.Fatal("want ErrDegenerate for single point")
	}
	if _, err := Linear([]float64{1, 1}, []float64{1, 2}); !errors.Is(err, ErrDegenerate) {
		t.Fatal("want ErrDegenerate for zero x-variance")
	}
	if _, err := Linear([]float64{1, 2}, []float64{1}); !errors.Is(err, ErrDegenerate) {
		t.Fatal("want ErrDegenerate for mismatched lengths")
	}
}

func TestExpRecoversParameters(t *testing.T) {
	x := make([]float64, 30)
	y := make([]float64, 30)
	for i := range x {
		x[i] = float64(i) / 10
		y[i] = 2.5 * math.Exp(-1.8*x[i])
	}
	e, err := Exp(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.A-2.5) > 1e-9 || math.Abs(e.B+1.8) > 1e-9 {
		t.Fatalf("fit %+v", e)
	}
}

func TestExpDropsNonpositive(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{1, math.Exp(-1), 0, -1, math.Exp(-4)} // two junk points
	e, err := Exp(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.B+1) > 1e-9 {
		t.Fatalf("fit should use only positive observations: %+v", e)
	}
}

func TestR2(t *testing.T) {
	y := []float64{1, 2, 3}
	if got := R2(y, y); got != 1 {
		t.Fatalf("perfect predictions: R² = %v", got)
	}
	if got := R2(y, []float64{2, 2, 2}); got != 0 {
		t.Fatalf("mean predictor: R² = %v", got)
	}
	if !math.IsNaN(R2(y, []float64{1, 2})) {
		t.Fatal("mismatched lengths must return NaN")
	}
	if got := R2([]float64{5, 5}, []float64{5, 5}); got != 1 {
		t.Fatalf("constant exact: %v", got)
	}
}
