// Package econ catalogs the economic primitives of the paper's macroscopic
// model: user-demand curves m(t), per-user throughput curves λ(φ), and
// system-utilization maps Φ(θ, µ), together with elasticity helpers and
// validators for the paper's Assumption 1 and Assumption 2.
//
// The paper's numerical evaluation uses the exponential family
// (m(t)=e^{−αt}, λ(φ)=e^{−βφ}, Φ=θ/µ); the additional families here exist
// for generality and for the ablation benchmarks that show the qualitative
// results do not hinge on the exponential form.
package econ

import (
	"fmt"
	"math"
)

// Demand is a user-demand curve m(t): the mass of users willing to consume a
// CP's content at per-unit usage charge t. Assumption 2 of the paper requires
// m to be continuously differentiable, decreasing, with m(t) → 0 as t → ∞.
//
// M must be defined for every real t (prices net of subsidies can be driven
// negative in intermediate solver states; implementations should extend
// smoothly).
type Demand interface {
	// M returns the user population at per-unit charge t.
	M(t float64) float64
	// DM returns dM/dt.
	DM(t float64) float64
}

// Throughput is a per-user throughput curve λ(φ). Assumption 1 requires λ to
// be differentiable, strictly decreasing in utilization φ, with λ(φ) → 0 as
// φ → ∞.
type Throughput interface {
	// Lambda returns the average per-user throughput at utilization phi.
	Lambda(phi float64) float64
	// DLambda returns dλ/dφ.
	DLambda(phi float64) float64
}

// Utilization is a system-utilization map Φ(θ, µ) with its inverse
// Θ(φ, µ) = Φ⁻¹(φ, µ) in the first argument. Assumption 1 requires Φ to be
// differentiable, strictly increasing in aggregate throughput θ, strictly
// decreasing in capacity µ, with Φ(θ, µ) → 0 as θ → 0.
type Utilization interface {
	// Phi returns the utilization induced by aggregate throughput theta on
	// capacity mu.
	Phi(theta, mu float64) float64
	// Theta returns the aggregate throughput that induces utilization phi on
	// capacity mu (the inverse of Phi in its first argument).
	Theta(phi, mu float64) float64
	// DThetaDPhi returns ∂Θ/∂φ, the marginal supply of throughput per unit
	// of utilization. It is the first term of the gap derivative (eq. 2).
	DThetaDPhi(phi, mu float64) float64
	// DThetaDMu returns ∂Θ/∂µ, used by the capacity effect (eq. 3).
	DThetaDMu(phi, mu float64) float64
}

// ---------------------------------------------------------------------------
// Demand families
// ---------------------------------------------------------------------------

// ExpDemand is the paper's styled demand m(t) = Scale·e^{−αt}. Its price
// elasticity is ε^m_t = −αt. Scale defaults to 1 via NewExpDemand.
type ExpDemand struct {
	Alpha float64 // price sensitivity α > 0
	Scale float64 // population scale m(0)
}

// NewExpDemand returns exponential demand e^{−alpha·t} with unit scale.
func NewExpDemand(alpha float64) ExpDemand { return ExpDemand{Alpha: alpha, Scale: 1} }

// M implements Demand.
func (d ExpDemand) M(t float64) float64 { return d.Scale * math.Exp(-d.Alpha*t) }

// DM implements Demand.
func (d ExpDemand) DM(t float64) float64 { return -d.Alpha * d.Scale * math.Exp(-d.Alpha*t) }

// IsoelasticDemand is m(t) = Scale·(1+t)^{−α} for t > −1, a heavy-tailed
// alternative whose elasticity −αt/(1+t) saturates.
type IsoelasticDemand struct {
	Alpha float64
	Scale float64
}

// M implements Demand.
func (d IsoelasticDemand) M(t float64) float64 {
	return d.Scale * math.Pow(1+math.Max(t, -0.999), -d.Alpha)
}

// DM implements Demand.
func (d IsoelasticDemand) DM(t float64) float64 {
	tt := math.Max(t, -0.999)
	return -d.Alpha * d.Scale * math.Pow(1+tt, -d.Alpha-1)
}

// LogisticDemand is m(t) = Scale·2/(1+e^{αt}), equal to Scale at t = 0,
// smooth, decreasing, and vanishing as t → ∞. Unlike ExpDemand it saturates
// for negative t, modeling a finite addressable population.
type LogisticDemand struct {
	Alpha float64
	Scale float64
}

// M implements Demand.
func (d LogisticDemand) M(t float64) float64 { return d.Scale * 2 / (1 + math.Exp(d.Alpha*t)) }

// DM implements Demand.
func (d LogisticDemand) DM(t float64) float64 {
	e := math.Exp(d.Alpha * t)
	den := 1 + e
	return -d.Scale * 2 * d.Alpha * e / (den * den)
}

// LinearDemand is m(t) = Scale·max(0, 1−αt), the textbook linear demand. It
// satisfies Assumption 2 only weakly (its derivative has a kink at the
// choke price 1/α); it is included for robustness experiments and its DM
// reports the one-sided derivative below the choke price.
type LinearDemand struct {
	Alpha float64
	Scale float64
}

// M implements Demand.
func (d LinearDemand) M(t float64) float64 { return d.Scale * math.Max(0, 1-d.Alpha*t) }

// DM implements Demand.
func (d LinearDemand) DM(t float64) float64 {
	if 1-d.Alpha*t <= 0 {
		return 0
	}
	return -d.Alpha * d.Scale
}

// ---------------------------------------------------------------------------
// Throughput families
// ---------------------------------------------------------------------------

// ExpThroughput is the paper's styled per-user throughput
// λ(φ) = Peak·e^{−βφ}, with utilization elasticity ε^λ_φ = −βφ.
type ExpThroughput struct {
	Beta float64 // congestion sensitivity β > 0
	Peak float64 // uncongested throughput λ(0)
}

// NewExpThroughput returns exponential throughput e^{−beta·φ} with unit peak.
func NewExpThroughput(beta float64) ExpThroughput { return ExpThroughput{Beta: beta, Peak: 1} }

// Lambda implements Throughput.
func (t ExpThroughput) Lambda(phi float64) float64 { return t.Peak * math.Exp(-t.Beta*phi) }

// DLambda implements Throughput.
func (t ExpThroughput) DLambda(phi float64) float64 {
	return -t.Beta * t.Peak * math.Exp(-t.Beta*phi)
}

// RationalThroughput is λ(φ) = Peak/(1+βφ), a slower-decaying family whose
// elasticity −βφ/(1+βφ) is bounded by 1.
type RationalThroughput struct {
	Beta float64
	Peak float64
}

// Lambda implements Throughput.
func (t RationalThroughput) Lambda(phi float64) float64 { return t.Peak / (1 + t.Beta*phi) }

// DLambda implements Throughput.
func (t RationalThroughput) DLambda(phi float64) float64 {
	den := 1 + t.Beta*phi
	return -t.Peak * t.Beta / (den * den)
}

// ---------------------------------------------------------------------------
// Utilization families
// ---------------------------------------------------------------------------

// LinearUtilization is the paper's Φ(θ, µ) = θ/µ: utilization measured as
// per-capacity throughput. Θ(φ, µ) = φµ.
type LinearUtilization struct{}

// Phi implements Utilization.
func (LinearUtilization) Phi(theta, mu float64) float64 { return theta / mu }

// Theta implements Utilization.
func (LinearUtilization) Theta(phi, mu float64) float64 { return phi * mu }

// DThetaDPhi implements Utilization.
func (LinearUtilization) DThetaDPhi(phi, mu float64) float64 { return mu }

// DThetaDMu implements Utilization.
func (LinearUtilization) DThetaDMu(phi, mu float64) float64 { return phi }

// PowerUtilization is Φ(θ, µ) = (θ/µ)^γ with γ > 0, a curvature-controlled
// generalization of LinearUtilization (γ = 1 recovers it). Larger γ makes
// utilization respond superlinearly near saturation.
type PowerUtilization struct {
	Gamma float64
}

// Phi implements Utilization.
func (u PowerUtilization) Phi(theta, mu float64) float64 {
	return math.Pow(theta/mu, u.Gamma)
}

// Theta implements Utilization.
func (u PowerUtilization) Theta(phi, mu float64) float64 {
	return mu * math.Pow(phi, 1/u.Gamma)
}

// DThetaDPhi implements Utilization.
func (u PowerUtilization) DThetaDPhi(phi, mu float64) float64 {
	if phi == 0 {
		// One-sided limit; finite only for γ ≤ 1. Return a large finite
		// surrogate to keep solvers away from the boundary.
		phi = 1e-12
	}
	return mu / u.Gamma * math.Pow(phi, 1/u.Gamma-1)
}

// DThetaDMu implements Utilization.
func (u PowerUtilization) DThetaDMu(phi, mu float64) float64 {
	return math.Pow(phi, 1/u.Gamma)
}

// SaturatingUtilization is Φ(θ, µ) = θ/(µ−θ) for θ < µ: utilization blows up
// as offered throughput approaches capacity, mimicking queueing delay.
// Θ(φ, µ) = µφ/(1+φ) < µ always, so the supply of throughput saturates at
// capacity.
type SaturatingUtilization struct{}

// Phi implements Utilization.
func (SaturatingUtilization) Phi(theta, mu float64) float64 {
	if theta >= mu {
		return math.Inf(1)
	}
	return theta / (mu - theta)
}

// Theta implements Utilization.
func (SaturatingUtilization) Theta(phi, mu float64) float64 { return mu * phi / (1 + phi) }

// DThetaDPhi implements Utilization.
func (SaturatingUtilization) DThetaDPhi(phi, mu float64) float64 {
	den := 1 + phi
	return mu / (den * den)
}

// DThetaDMu implements Utilization.
func (SaturatingUtilization) DThetaDMu(phi, mu float64) float64 { return phi / (1 + phi) }

// ---------------------------------------------------------------------------
// Elasticities (Definition 2)
// ---------------------------------------------------------------------------

// Elasticity returns ε^y_x = (∂y/∂x)·(x/y) given the derivative dydx and the
// point (x, y). It returns 0 when y = 0 (measure-zero states solvers pass
// through).
func Elasticity(dydx, x, y float64) float64 {
	if y == 0 {
		return 0
	}
	return dydx * x / y
}

// DemandElasticity returns the t-elasticity of demand ε^m_t at t.
func DemandElasticity(d Demand, t float64) float64 {
	return Elasticity(d.DM(t), t, d.M(t))
}

// ThroughputElasticity returns the φ-elasticity of throughput ε^λ_φ at phi.
func ThroughputElasticity(th Throughput, phi float64) float64 {
	return Elasticity(th.DLambda(phi), phi, th.Lambda(phi))
}

// ---------------------------------------------------------------------------
// Assumption validators
// ---------------------------------------------------------------------------

// ValidateAssumption1 numerically checks the paper's Assumption 1 for a
// (Throughput, Utilization) pair on a grid: Φ strictly increasing in θ and
// strictly decreasing in µ; λ strictly decreasing in φ and vanishing for
// large φ. It returns a descriptive error on the first violation.
func ValidateAssumption1(th Throughput, u Utilization) error {
	const n = 24
	for i := 1; i < n; i++ {
		phiA := float64(i-1) * 0.5
		phiB := float64(i) * 0.5
		if !(th.Lambda(phiB) < th.Lambda(phiA)) {
			return fmt.Errorf("econ: λ not strictly decreasing between φ=%g and φ=%g", phiA, phiB)
		}
	}
	// Vanishing tail: λ(φ) → 0 as φ → ∞. The horizon is generous so that
	// slowly decaying families (e.g. RationalThroughput) still qualify.
	if th.Lambda(1e4) > 1e-2*th.Lambda(0) {
		return fmt.Errorf("econ: λ(φ) does not vanish for large φ: λ(1e4)=%g", th.Lambda(1e4))
	}
	// Monotonicity in θ is checked below capacity (saturating families blow
	// up at θ = µ, which is their way of being "strictly increasing").
	for i := 1; i < n; i++ {
		thA := float64(i-1) * 0.9 / float64(n)
		thB := float64(i) * 0.9 / float64(n)
		if !(u.Phi(thB, 1) > u.Phi(thA, 1)) {
			return fmt.Errorf("econ: Φ not strictly increasing in θ between %g and %g", thA, thB)
		}
	}
	// θ = 0.3 sits below every capacity on the µ grid, keeping saturating
	// families finite.
	for i := 1; i < n; i++ {
		muA := 0.5 + float64(i-1)*0.25
		muB := 0.5 + float64(i)*0.25
		if !(u.Phi(0.3, muB) < u.Phi(0.3, muA)) {
			return fmt.Errorf("econ: Φ not strictly decreasing in µ between %g and %g", muA, muB)
		}
	}
	if u.Phi(1e-9, 1) > 1e-6 {
		return fmt.Errorf("econ: Φ(θ→0) does not vanish: Φ(1e-9,1)=%g", u.Phi(1e-9, 1))
	}
	// Inverse consistency: Θ(Φ(θ,µ),µ) ≈ θ on sub-capacity loads.
	for _, frac := range []float64{0.1, 0.5, 0.9} {
		for _, mu := range []float64{0.5, 1, 2} {
			theta := frac * mu
			phi := u.Phi(theta, mu)
			if back := u.Theta(phi, mu); math.Abs(back-theta) > 1e-9*math.Max(1, theta) {
				return fmt.Errorf("econ: Θ is not the inverse of Φ at θ=%g µ=%g (got %g)", theta, mu, back)
			}
		}
	}
	return nil
}

// ValidateAssumption2 numerically checks Assumption 2 for a demand curve:
// decreasing with limit 0 at large t.
func ValidateAssumption2(d Demand) error {
	prev := d.M(0)
	for i := 1; i <= 24; i++ {
		t := float64(i) * 0.5
		cur := d.M(t)
		if cur > prev+1e-15 {
			return fmt.Errorf("econ: demand not decreasing at t=%g", t)
		}
		prev = cur
	}
	if d.M(1e3) > 1e-3*d.M(0) {
		return fmt.Errorf("econ: demand does not vanish for large t: m(1000)=%g", d.M(1e3))
	}
	return nil
}
