package econ

import (
	"errors"
	"math"
	"testing"
)

func TestCalibrateDemandRecovers(t *testing.T) {
	truth := ExpDemand{Alpha: 2.5, Scale: 0.8}
	var prices, pops []float64
	for k := 0; k <= 20; k++ {
		p := float64(k) / 10
		prices = append(prices, p)
		pops = append(pops, truth.M(p))
	}
	got, r2, err := CalibrateDemand(prices, pops)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Alpha-2.5) > 1e-9 || math.Abs(got.Scale-0.8) > 1e-9 {
		t.Fatalf("calibrated %+v", got)
	}
	if r2 < 1-1e-12 {
		t.Fatalf("R² = %v on exact data", r2)
	}
}

func TestCalibrateThroughputRecovers(t *testing.T) {
	truth := ExpThroughput{Beta: 3.2, Peak: 1.4}
	var phis, lams []float64
	for k := 0; k <= 15; k++ {
		phi := float64(k) / 5
		phis = append(phis, phi)
		lams = append(lams, truth.Lambda(phi))
	}
	got, _, err := CalibrateThroughput(phis, lams)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.Beta-3.2) > 1e-9 || math.Abs(got.Peak-1.4) > 1e-9 {
		t.Fatalf("calibrated %+v", got)
	}
}

func TestCalibrateRejectsWrongSign(t *testing.T) {
	prices := []float64{0, 1, 2}
	rising := []float64{1, 2, 4} // demand rising with price: nonsense
	if _, _, err := CalibrateDemand(prices, rising); !errors.Is(err, ErrBadFit) {
		t.Fatal("rising demand must be rejected")
	}
	if _, _, err := CalibrateThroughput(prices, rising); !errors.Is(err, ErrBadFit) {
		t.Fatal("rising throughput must be rejected")
	}
}

func TestCalibrateRejectsDegenerate(t *testing.T) {
	if _, _, err := CalibrateDemand([]float64{1}, []float64{1}); !errors.Is(err, ErrBadFit) {
		t.Fatal("single point must be rejected")
	}
	// All-nonpositive observations carry no exponential information.
	if _, _, err := CalibrateDemand([]float64{0, 1, 2}, []float64{0, -1, 0}); !errors.Is(err, ErrBadFit) {
		t.Fatal("nonpositive data must be rejected")
	}
}
