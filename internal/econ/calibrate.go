package econ

import (
	"errors"
	"fmt"

	"neutralnet/internal/fit"
)

// This file calibrates the paper's styled curves from data. The paper notes
// (§6) that "market data are needed so as to obtain the characteristics of
// the CPs, e.g., their profitability and elasticities" and expects such data
// to emerge from sponsored-data deployments; these helpers turn observed
// (price, population) and (utilization, throughput) samples — from the
// flow-level simulator or from a real deployment — into ExpDemand and
// ExpThroughput parameters, with the fit quality reported.

// ErrBadFit is returned when a calibration's log-linear regression is
// degenerate or the fitted sign contradicts the assumptions.
var ErrBadFit = errors.New("econ: calibration failed")

// CalibrateDemand fits m(t) = Scale·e^{−αt} to observed (price, population)
// samples and returns the demand curve with the regression R².
func CalibrateDemand(prices, populations []float64) (ExpDemand, float64, error) {
	e, err := fit.Exp(prices, populations)
	if err != nil {
		return ExpDemand{}, 0, fmt.Errorf("%w: %v", ErrBadFit, err)
	}
	if e.B >= 0 {
		return ExpDemand{}, e.R2, fmt.Errorf("%w: fitted demand increases with price (B=%g)", ErrBadFit, e.B)
	}
	return ExpDemand{Alpha: -e.B, Scale: e.A}, e.R2, nil
}

// CalibrateThroughput fits λ(φ) = Peak·e^{−βφ} to observed
// (utilization, per-user throughput) samples and returns the curve with R².
func CalibrateThroughput(phis, lambdas []float64) (ExpThroughput, float64, error) {
	e, err := fit.Exp(phis, lambdas)
	if err != nil {
		return ExpThroughput{}, 0, fmt.Errorf("%w: %v", ErrBadFit, err)
	}
	if e.B >= 0 {
		return ExpThroughput{}, e.R2, fmt.Errorf("%w: fitted throughput increases with utilization (B=%g)", ErrBadFit, e.B)
	}
	return ExpThroughput{Beta: -e.B, Peak: e.A}, e.R2, nil
}
