package econ

import "math"

// This file models the tiered ("data cap") pricing schemes the paper's
// introduction cites as the real-world carrier practice (Verizon/AT&T
// metered tiers above a predefined cap, §1 and §6): users do not react to
// marginal prices below a threshold t0 — the allowance makes small usage
// charges invisible — and respond like exponential demand above it.

// CappedExpDemand is m(t) = Scale·e^{−α·softplus_k(t−t0)}: demand is flat
// (≈ Scale) for t ≪ t0 and exponential with sensitivity α for t ≫ t0. The
// softplus smoothing (sharpness k) keeps the curve continuously
// differentiable, so Assumption 2's smoothness survives — with the caveat
// that the decrease is only strict above the cap region, which is exactly
// the economic point of a data cap.
type CappedExpDemand struct {
	Alpha     float64 // price sensitivity above the cap
	T0        float64 // effective-cap price threshold
	Sharpness float64 // softplus sharpness k (0 selects 8)
	Scale     float64 // population scale (0 selects 1)
}

func (d CappedExpDemand) k() float64 {
	if d.Sharpness <= 0 {
		return 8
	}
	return d.Sharpness
}

func (d CappedExpDemand) scale() float64 {
	if d.Scale == 0 {
		return 1
	}
	return d.Scale
}

// softplus computes ln(1+e^{kx})/k without overflow.
func (d CappedExpDemand) softplus(x float64) float64 {
	k := d.k()
	if k*x > 30 {
		return x
	}
	return math.Log1p(math.Exp(k*x)) / k
}

// dsoftplus is the logistic σ(kx), the derivative of softplus.
func (d CappedExpDemand) dsoftplus(x float64) float64 {
	k := d.k()
	if k*x > 30 {
		return 1
	}
	e := math.Exp(k * x)
	return e / (1 + e)
}

// M implements Demand.
func (d CappedExpDemand) M(t float64) float64 {
	return d.scale() * math.Exp(-d.Alpha*d.softplus(t-d.T0))
}

// DM implements Demand.
func (d CappedExpDemand) DM(t float64) float64 {
	return -d.Alpha * d.dsoftplus(t-d.T0) * d.M(t)
}
