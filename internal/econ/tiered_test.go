package econ

import (
	"math"
	"testing"

	"neutralnet/internal/numeric"
)

func TestCappedDemandFlatBelowCap(t *testing.T) {
	d := CappedExpDemand{Alpha: 4, T0: 1}
	if got := d.M(0); math.Abs(got-1) > 0.02 {
		t.Fatalf("m(0) = %v, want ≈ 1 (inelastic region)", got)
	}
	// Below the cap, demand barely moves.
	if drop := d.M(0) - d.M(0.5); drop > 0.05 {
		t.Fatalf("demand dropped %v below the cap", drop)
	}
	// Above the cap it behaves exponentially: relative decay over Δt = 0.5
	// approaches e^{−α·0.5}.
	ratio := d.M(2.5) / d.M(2.0)
	if math.Abs(ratio-math.Exp(-4*0.5)) > 0.02 {
		t.Fatalf("above-cap decay ratio %v, want ≈ %v", ratio, math.Exp(-2.0))
	}
}

func TestCappedDemandSmoothDerivative(t *testing.T) {
	d := CappedExpDemand{Alpha: 3, T0: 0.8, Sharpness: 10, Scale: 2}
	for _, tt := range []float64{0, 0.4, 0.8, 1.2, 2.5} {
		want := numeric.Derivative(d.M, tt, 0)
		if got := d.DM(tt); math.Abs(got-want) > 1e-5*math.Max(1, math.Abs(want)) {
			t.Fatalf("DM(%v) = %v, numeric %v", tt, got, want)
		}
	}
}

func TestCappedDemandAssumption2(t *testing.T) {
	if err := ValidateAssumption2(CappedExpDemand{Alpha: 2, T0: 0.5}); err != nil {
		t.Fatalf("capped demand must satisfy Assumption 2's monotone tail: %v", err)
	}
}

func TestCappedDemandNoOverflow(t *testing.T) {
	d := CappedExpDemand{Alpha: 2, T0: 1}
	if v := d.M(1e6); v != 0 && (math.IsNaN(v) || math.IsInf(v, 0)) {
		t.Fatalf("m at huge t: %v", v)
	}
	if v := d.DM(1e6); math.IsNaN(v) || math.IsInf(v, 0) {
		t.Fatalf("DM at huge t: %v", v)
	}
	if v := d.M(-1e6); math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v-1) > 1e-9 {
		t.Fatalf("m at very negative t: %v, want saturation at scale", v)
	}
}
