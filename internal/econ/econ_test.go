package econ

import (
	"math"
	"testing"
	"testing/quick"

	"neutralnet/internal/numeric"
)

func TestExpDemandClosedForms(t *testing.T) {
	d := NewExpDemand(3)
	if got := d.M(0); got != 1 {
		t.Fatalf("m(0) = %v, want 1", got)
	}
	if got := d.M(1); math.Abs(got-math.Exp(-3)) > 1e-15 {
		t.Fatalf("m(1) = %v", got)
	}
	// The paper's elasticity: ε^m_t = −αt.
	for _, tt := range []float64{0.1, 0.5, 1, 2} {
		if got := DemandElasticity(d, tt); math.Abs(got-(-3*tt)) > 1e-9 {
			t.Fatalf("elasticity at t=%v: got %v, want %v", tt, got, -3*tt)
		}
	}
}

func TestExpThroughputClosedForms(t *testing.T) {
	th := NewExpThroughput(2)
	if got := th.Lambda(0); got != 1 {
		t.Fatalf("λ(0) = %v", got)
	}
	// ε^λ_φ = −βφ.
	for _, phi := range []float64{0.2, 1, 3} {
		if got := ThroughputElasticity(th, phi); math.Abs(got-(-2*phi)) > 1e-9 {
			t.Fatalf("elasticity at φ=%v: got %v", phi, got)
		}
	}
}

func TestDerivativesMatchNumeric(t *testing.T) {
	demands := []Demand{
		NewExpDemand(2.5),
		IsoelasticDemand{Alpha: 1.5, Scale: 2},
		LogisticDemand{Alpha: 3, Scale: 1},
	}
	for _, d := range demands {
		for _, x := range []float64{0.1, 0.7, 1.9} {
			want := numeric.Derivative(d.M, x, 0)
			if got := d.DM(x); math.Abs(got-want) > 1e-6*math.Max(1, math.Abs(want)) {
				t.Fatalf("%T: DM(%v) = %v, numeric %v", d, x, got, want)
			}
		}
	}
	throughputs := []Throughput{NewExpThroughput(4), RationalThroughput{Beta: 2, Peak: 3}}
	for _, th := range throughputs {
		for _, phi := range []float64{0.1, 0.8, 2.2} {
			want := numeric.Derivative(th.Lambda, phi, 0)
			if got := th.DLambda(phi); math.Abs(got-want) > 1e-6*math.Max(1, math.Abs(want)) {
				t.Fatalf("%T: DLambda(%v) = %v, numeric %v", th, phi, got, want)
			}
		}
	}
}

func TestLinearDemandKink(t *testing.T) {
	d := LinearDemand{Alpha: 2, Scale: 1}
	if got := d.M(0.25); got != 0.5 {
		t.Fatalf("m(0.25) = %v", got)
	}
	if got := d.M(5); got != 0 {
		t.Fatalf("beyond choke price: %v", got)
	}
	if got := d.DM(5); got != 0 {
		t.Fatalf("derivative beyond choke: %v", got)
	}
	if got := d.DM(0.1); got != -2 {
		t.Fatalf("derivative below choke: %v", got)
	}
}

func TestUtilizationInverses(t *testing.T) {
	utils := []Utilization{
		LinearUtilization{},
		PowerUtilization{Gamma: 2},
		PowerUtilization{Gamma: 0.7},
		SaturatingUtilization{},
	}
	for _, u := range utils {
		for _, mu := range []float64{0.5, 1, 3} {
			for _, theta := range []float64{0.01, 0.2, 0.45} {
				phi := u.Phi(theta, mu)
				if back := u.Theta(phi, mu); math.Abs(back-theta) > 1e-9 {
					t.Fatalf("%T: Θ(Φ(θ)) = %v, want %v (µ=%v)", u, back, theta, mu)
				}
				// ∂Θ/∂φ and ∂Θ/∂µ vs numerical differentiation (Richardson,
				// since the power family has strong curvature near 0).
				dphi := numeric.DerivativeRichardson(func(p float64) float64 { return u.Theta(p, mu) }, phi, 0)
				// Power families have unbounded higher derivatives near 0, so
				// the numeric reference itself carries ~1e-3 relative error
				// there; 5e-3 relative is tight enough to catch sign or
				// factor mistakes.
				if got := u.DThetaDPhi(phi, mu); math.Abs(got-dphi) > 5e-3*math.Max(1, math.Abs(dphi)) {
					t.Fatalf("%T: DThetaDPhi = %v, numeric %v", u, got, dphi)
				}
				dmu := numeric.DerivativeRichardson(func(m float64) float64 { return u.Theta(phi, m) }, mu, 0)
				if got := u.DThetaDMu(phi, mu); math.Abs(got-dmu) > 5e-3*math.Max(1, math.Abs(dmu)) {
					t.Fatalf("%T: DThetaDMu = %v, numeric %v", u, got, dmu)
				}
			}
		}
	}
}

func TestSaturatingUtilizationOverload(t *testing.T) {
	u := SaturatingUtilization{}
	if !math.IsInf(u.Phi(2, 1), 1) {
		t.Fatal("Φ must blow up at capacity")
	}
	if th := u.Theta(1e9, 1); th > 1 {
		t.Fatalf("Θ must saturate below capacity, got %v", th)
	}
}

func TestValidateAssumption1(t *testing.T) {
	if err := ValidateAssumption1(NewExpThroughput(2), LinearUtilization{}); err != nil {
		t.Fatalf("paper's styled pair must validate: %v", err)
	}
	if err := ValidateAssumption1(RationalThroughput{Beta: 1, Peak: 1}, SaturatingUtilization{}); err != nil {
		t.Fatalf("rational/saturating pair must validate: %v", err)
	}
	// An increasing "throughput" must fail.
	if err := ValidateAssumption1(badThroughput{}, LinearUtilization{}); err == nil {
		t.Fatal("increasing λ must violate Assumption 1")
	}
}

func TestValidateAssumption2(t *testing.T) {
	if err := ValidateAssumption2(NewExpDemand(1)); err != nil {
		t.Fatalf("exponential demand must validate: %v", err)
	}
	if err := ValidateAssumption2(LogisticDemand{Alpha: 2, Scale: 3}); err != nil {
		t.Fatalf("logistic demand must validate: %v", err)
	}
	if err := ValidateAssumption2(badDemand{}); err == nil {
		t.Fatal("increasing demand must violate Assumption 2")
	}
}

func TestElasticityZeroDenominator(t *testing.T) {
	if got := Elasticity(1, 1, 0); got != 0 {
		t.Fatalf("elasticity with y=0 should be 0, got %v", got)
	}
}

func TestAssumptionsQuick(t *testing.T) {
	// Property: every exponential (α, β) pair in a realistic range satisfies
	// both assumptions.
	prop := func(a8, b8 uint8) bool {
		alpha := 0.2 + float64(a8)/32 // (0.2, 8.2)
		beta := 0.2 + float64(b8)/32
		return ValidateAssumption2(NewExpDemand(alpha)) == nil &&
			ValidateAssumption1(NewExpThroughput(beta), LinearUtilization{}) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

type badThroughput struct{}

func (badThroughput) Lambda(phi float64) float64  { return 1 + phi }
func (badThroughput) DLambda(phi float64) float64 { return 1 }

type badDemand struct{}

func (badDemand) M(t float64) float64  { return 1 + t }
func (badDemand) DM(t float64) float64 { return 1 }
