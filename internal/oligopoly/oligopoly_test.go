package oligopoly

import (
	"math"
	"testing"

	"neutralnet/internal/econ"
	"neutralnet/internal/model"
)

// smallMarketN is the N-ISP counterpart of the duopoly test fixture: the
// same two-CP catalog over N equal capacity shares of the duopoly's unit
// total, so the market stays comparable as N grows.
func smallMarketN(n int) *Market {
	mk := func(a, b, v float64) model.CP {
		return model.CP{
			Demand:     econ.NewExpDemand(a),
			Throughput: econ.NewExpThroughput(b),
			Value:      v,
		}
	}
	mu := make([]float64, n)
	for k := range mu {
		mu[k] = 1.0 / float64(n)
	}
	return &Market{
		CPs:   []model.CP{mk(4, 2, 1), mk(2, 4, 0.5)},
		Util:  econ.LinearUtilization{},
		Mu:    mu,
		Sigma: 3,
		Q:     1,
	}
}

func TestValidate(t *testing.T) {
	if err := smallMarketN(3).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Market{
		{},
		{CPs: smallMarketN(1).CPs},
		{CPs: smallMarketN(1).CPs, Mu: []float64{1, 0}, Util: econ.LinearUtilization{}},
		{CPs: smallMarketN(1).CPs, Mu: []float64{1, -1}, Util: econ.LinearUtilization{}},
		{CPs: smallMarketN(1).CPs, Mu: []float64{1}},
		{CPs: smallMarketN(1).CPs, Mu: []float64{1}, Util: econ.LinearUtilization{}, Sigma: -1},
		{CPs: smallMarketN(1).CPs, Mu: []float64{1}, Util: econ.LinearUtilization{}, Q: -1},
	}
	for i, m := range bad {
		if err := m.Validate(); err == nil {
			t.Fatalf("bad market %d validated", i)
		}
	}
}

func TestSolveDimensionErrors(t *testing.T) {
	m := smallMarketN(3)
	if _, err := m.Solve([]float64{1, 1}, []float64{0, 0}); err == nil {
		t.Fatal("price/ISP dimension mismatch accepted")
	}
	if _, err := m.Solve([]float64{1, 1, 1}, []float64{0}); err == nil {
		t.Fatal("subsidy/CP dimension mismatch accepted")
	}
	if _, _, err := m.CPEquilibrium([]float64{1}, nil); err == nil {
		t.Fatal("CPEquilibrium price dimension mismatch accepted")
	}
}

func TestUnknownSolverSurfaces(t *testing.T) {
	m := smallMarketN(2)
	m.Solver = "no-such-scheme" //lint:ignore solvername negative-path fixture: must NOT be a registered scheme
	if _, _, err := m.CPEquilibrium([]float64{1, 1}, nil); err == nil {
		t.Fatal("unknown fixed-point scheme accepted")
	}
}

func TestUnknownUtilKernelSurfaces(t *testing.T) {
	m := smallMarketN(2)
	m.UtilSolver = "no-such-kernel" //lint:ignore solvername negative-path fixture: must NOT be a registered kernel
	if _, _, err := m.CPEquilibrium([]float64{1, 1}, nil); err == nil {
		t.Fatal("unknown utilization kernel accepted")
	}
}

func TestPriceEquilibriumRejectsBadPMax(t *testing.T) {
	if _, _, _, err := smallMarketN(2).PriceEquilibrium(0, 0); err == nil {
		t.Fatal("pMax = 0 accepted")
	}
}

// TestStateCloneIndependence checks the borrow contract's escape hatch:
// a cloned state must not alias the workspace buffers the original
// borrowed.
func TestStateCloneIndependence(t *testing.T) {
	m := smallMarketN(3)
	ws := NewWorkspace()
	p := []float64{0.9, 1.0, 1.1}
	_, st, err := m.CPEquilibriumWS(ws, p, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap := st.Clone()
	phi := snap.Net[0].Phi
	theta := snap.Net[2].Theta[0]
	// Re-solve at very different prices: borrowed buffers get overwritten.
	if _, _, err := m.CPEquilibriumWS(ws, []float64{0.1, 2.0, 0.3}, nil); err != nil {
		t.Fatal(err)
	}
	if snap.Net[0].Phi != phi || snap.Net[2].Theta[0] != theta {
		t.Fatal("Clone aliases workspace buffers")
	}
}

// TestSymmetricOligopolySymmetricPrices: with equal capacities the
// sequential best-response competition must end at (near-)equal prices for
// every player — the N-player version of the duopoly symmetry test.
func TestSymmetricOligopolySymmetricPrices(t *testing.T) {
	m := smallMarketN(3)
	p, s, st, err := m.PriceEquilibrium(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < len(p); k++ {
		if d := math.Abs(p[k] - p[0]); d > 1e-3 {
			t.Fatalf("asymmetric prices in symmetric market: %v", p)
		}
	}
	if len(s) != len(m.CPs) || len(st.Net) != 3 {
		t.Fatalf("malformed equilibrium result: %d subsidies, %d networks", len(s), len(st.Net))
	}
	for k := range st.Net {
		if st.Net[k].Phi < 0 || st.Net[k].Phi > 1 {
			t.Fatalf("network %d utilization %v outside [0,1]", k, st.Net[k].Phi)
		}
	}
}

// TestChainIndependentOfWorkspaceHistory: a chained solve sequence must
// give bit-identical results on a fresh workspace and on one that
// previously solved unrelated markets — the property the deterministic
// sweep scheduler relies on at segment starts.
func TestChainIndependentOfWorkspaceHistory(t *testing.T) {
	m := smallMarketN(3)
	chain := [][]float64{{0.5, 1.0, 1.5}, {0.6, 1.0, 1.5}, {0.7, 1.0, 1.5}}

	run := func(ws *Workspace) [][]float64 {
		var out [][]float64
		var warm []float64
		for n, p := range chain {
			s, _, err := m.CPEquilibriumChainWS(ws, p, warm, n > 0)
			if err != nil {
				t.Fatal(err)
			}
			warm = append(warm[:0], s...)
			out = append(out, append([]float64(nil), s...))
		}
		return out
	}

	fresh := run(NewWorkspace())

	dirty := NewWorkspace()
	other := smallMarketN(4)
	if _, _, err := other.CPEquilibriumWS(dirty, []float64{2, 0.1, 1.3, 0.7}, nil); err != nil {
		t.Fatal(err)
	}
	reused := run(dirty)

	for n := range fresh {
		for i := range fresh[n] {
			if math.Float64bits(fresh[n][i]) != math.Float64bits(reused[n][i]) {
				t.Fatalf("link %d s[%d]: fresh %v vs reused-workspace %v", n, i, fresh[n][i], reused[n][i])
			}
		}
	}
}

// TestOligopolyWSAllocFree asserts the zero-alloc contract of the chain hot
// path at N = 3: a warm workspace solves the CP equilibrium — plain and
// φ-carrying — with zero steady-state heap allocations.
func TestOligopolyWSAllocFree(t *testing.T) {
	m := smallMarketN(3)
	ws := NewWorkspace()
	p := []float64{0.9, 1.0, 1.1}
	if _, _, err := m.CPEquilibriumWS(ws, p, nil); err != nil { // warm-up
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		if _, _, err := m.CPEquilibriumWS(ws, p, nil); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("CPEquilibriumWS allocates %v objects per solve on a warm workspace", allocs)
	}
	warm := make([]float64, len(m.CPs))
	allocs = testing.AllocsPerRun(5, func() {
		s, _, err := m.CPEquilibriumChainWS(ws, p, warm, true)
		if err != nil {
			t.Fatal(err)
		}
		copy(warm, s)
	})
	if allocs != 0 {
		t.Fatalf("CPEquilibriumChainWS allocates %v objects per solve on a warm chain", allocs)
	}
}

// FuzzOligopolyShares fuzzes the logit split over (σ, p₁..p₄): every share
// must lie in [0,1], the shares must sum to 1 (within float error), and the
// split must be symmetric under player permutation — permuting the price
// vector must permute the shares and nothing else.
func FuzzOligopolyShares(f *testing.F) {
	f.Add(3.0, 1.0, 1.0, 1.0, 1.0)
	f.Add(0.0, 0.5, 1.5, 2.0, 0.1)
	f.Add(5.0, 0.0, 0.0, 3.0, 0.7)
	f.Add(0.5, 2.0, 1.0, 0.0, 4.0)
	f.Fuzz(func(t *testing.T, sigma, p1, p2, p3, p4 float64) {
		if math.IsNaN(sigma) || sigma < 0 || sigma > 50 {
			t.Skip()
		}
		p := []float64{p1, p2, p3, p4}
		for _, pk := range p {
			if math.IsNaN(pk) || pk < 0 || pk > 100 {
				t.Skip()
			}
		}
		m := &Market{Sigma: sigma, Mu: []float64{1, 1, 1, 1}}
		shares := m.Shares(p)
		sum := 0.0
		for k, sh := range shares {
			if !(sh >= 0 && sh <= 1) {
				t.Fatalf("share %d = %v outside [0,1] at σ=%v p=%v", k, sh, sigma, p)
			}
			sum += sh
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("shares sum to %v at σ=%v p=%v", sum, sigma, p)
		}
		// Permutation symmetry: rotate the price vector one step.
		rot := []float64{p[1], p[2], p[3], p[0]}
		sharesRot := m.Shares(rot)
		for k := range rot {
			if d := math.Abs(sharesRot[k] - shares[(k+1)%4]); d > 1e-12 {
				t.Fatalf("permutation asymmetry %g at σ=%v p=%v", d, sigma, p)
			}
		}
	})
}
