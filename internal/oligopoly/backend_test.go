package oligopoly

import (
	"math"
	"testing"

	"neutralnet/internal/duopoly"
	"neutralnet/internal/econ"
	"neutralnet/internal/model"
	"neutralnet/internal/solver"
)

// The equivalence suite pins the N-ISP generalization to the two markets the
// repo already trusts: an N = 2 oligopoly must reproduce duopoly.Market and
// an N = 1 oligopoly (through MonopolyBenchmark) must reproduce
// duopoly.Market.MonopolyBenchmark. Because the oligopoly code performs the
// duopoly's float operations in the duopoly's order, the pins are exact
// (bitwise), which is strictly stronger than the ≤1e-12 acceptance bar.

// fixtures is the seeded grid of paired duopoly/oligopoly market instances
// the suite runs over: varying prices, caps, capacity splits and logit
// sensitivities, in the style of the duopoly backend suite.
type fixture struct {
	name  string
	duo   *duopoly.Market
	oli   *Market
	p     [2]float64
	sigma float64
}

func testCPs() []model.CP {
	mk := func(a, b, v float64) model.CP {
		return model.CP{
			Demand:     econ.NewExpDemand(a),
			Throughput: econ.NewExpThroughput(b),
			Value:      v,
		}
	}
	return []model.CP{mk(4, 2, 1), mk(2, 4, 0.5), mk(3, 3, 0.8)}
}

func fixtures() []fixture {
	base := testCPs()
	var out []fixture
	for _, tc := range []struct {
		name  string
		mu    [2]float64
		q     float64
		sigma float64
		p     [2]float64
	}{
		{"symmetric", [2]float64{0.5, 0.5}, 1, 3, [2]float64{1, 1}},
		{"asymmetric-mu", [2]float64{0.3, 0.8}, 1, 3, [2]float64{0.9, 1.1}},
		{"tight-cap", [2]float64{0.5, 0.5}, 0.3, 2, [2]float64{0.7, 0.7}},
		{"loose-cap", [2]float64{0.6, 0.4}, 2, 5, [2]float64{1.4, 0.6}},
		{"zero-cap", [2]float64{0.5, 0.5}, 0, 3, [2]float64{1, 1}},
	} {
		out = append(out, fixture{
			name:  tc.name,
			duo:   &duopoly.Market{CPs: base, Util: econ.LinearUtilization{}, Mu: tc.mu, Sigma: tc.sigma, Q: tc.q},
			oli:   &Market{CPs: base, Util: econ.LinearUtilization{}, Mu: []float64{tc.mu[0], tc.mu[1]}, Sigma: tc.sigma, Q: tc.q},
			p:     tc.p,
			sigma: tc.sigma,
		})
	}
	return out
}

func bitEq(t *testing.T, ctx string, got, want float64) {
	t.Helper()
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("%s: got %v (%#x), want %v (%#x)", ctx,
			got, math.Float64bits(got), want, math.Float64bits(want))
	}
}

func bitEqSlice(t *testing.T, ctx string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", ctx, len(got), len(want))
	}
	for i := range got {
		bitEq(t, ctx, got[i], want[i])
	}
}

func bitEqNet(t *testing.T, ctx string, got, want model.State) {
	t.Helper()
	bitEq(t, ctx+".Phi", got.Phi, want.Phi)
	bitEqSlice(t, ctx+".M", got.M, want.M)
	bitEqSlice(t, ctx+".Theta", got.Theta, want.Theta)
}

// TestSharesMatchDuopolyBitwise pins the N = 2 logit split to
// duopoly.Market.Shares bit for bit across a seeded (σ, p₁, p₂) grid.
func TestSharesMatchDuopolyBitwise(t *testing.T) {
	for _, sigma := range []float64{0, 0.5, 2, 5} {
		duo := &duopoly.Market{Sigma: sigma}
		oli := &Market{Sigma: sigma, Mu: []float64{1, 1}}
		dst := make([]float64, 2)
		for _, p1 := range []float64{0, 0.3, 1, 2.5} {
			for _, p2 := range []float64{0.1, 1, 1.9} {
				s1, s2 := duo.Shares(p1, p2)
				oli.SharesInto(dst, []float64{p1, p2})
				bitEq(t, "share 0", dst[0], s1)
				bitEq(t, "share 1", dst[1], s2)
			}
		}
	}
}

// TestCPEquilibriumMatchesDuopolyAllSolvers pins the N = 2 CP equilibrium
// (subsidy profile, shares, and every network's physical state) to the
// duopoly workspace path bit for bit, for every registered fixed-point
// scheme including "auto", under both the cold and warm utilization
// kernels.
func TestCPEquilibriumMatchesDuopolyAllSolvers(t *testing.T) {
	for _, scheme := range solver.Names() {
		for _, kernel := range []string{model.UtilBrent, model.UtilBrentWarm} {
			for _, tc := range fixtures() {
				duo, oli := *tc.duo, *tc.oli
				duo.Solver, oli.Solver = scheme, scheme
				duo.UtilSolver, oli.UtilSolver = kernel, kernel
				sDuo, stDuo, err := duo.CPEquilibrium(tc.p, nil)
				if err != nil {
					t.Fatalf("%s/%s/%s: duopoly: %v", scheme, kernel, tc.name, err)
				}
				sOli, stOli, err := oli.CPEquilibrium([]float64{tc.p[0], tc.p[1]}, nil)
				if err != nil {
					t.Fatalf("%s/%s/%s: oligopoly: %v", scheme, kernel, tc.name, err)
				}
				ctx := scheme + "/" + kernel + "/" + tc.name
				bitEqSlice(t, ctx+": s", sOli, sDuo)
				bitEqSlice(t, ctx+": shares", stOli.Shares, stDuo.Shares[:])
				for k := 0; k < 2; k++ {
					bitEqNet(t, ctx+": net", stOli.Net[k], stDuo.Net[k])
				}
				bitEq(t, ctx+": welfare", oli.Welfare(stOli), duo.Welfare(stDuo))
				for i := range sOli {
					bitEq(t, ctx+": throughput", stOli.TotalThroughput(i), stDuo.TotalThroughput(i))
				}
			}
		}
	}
}

// TestCPEquilibriumWarmChainMatchesDuopoly walks both implementations down
// the same price chain with warm subsidy carry and φ (utilization-seed)
// carry, as the sweep workers do, and requires bitwise agreement at every
// link — the chained states are history-dependent, so this is the strongest
// equivalence the sweep layer relies on.
func TestCPEquilibriumWarmChainMatchesDuopoly(t *testing.T) {
	tc := fixtures()[1]
	wsDuo, wsOli := duopoly.NewWorkspace(), NewWorkspace()
	var warmDuo, warmOli []float64
	chain := [][2]float64{{0.4, 1.2}, {0.5, 1.2}, {0.6, 1.2}, {0.6, 1.1}, {0.6, 1.0}}
	for n, p := range chain {
		carry := n > 0
		sDuo, stDuo, err := tc.duo.CPEquilibriumChainWS(wsDuo, p, warmDuo, carry)
		if err != nil {
			t.Fatalf("link %d: duopoly: %v", n, err)
		}
		sOli, stOli, err := tc.oli.CPEquilibriumChainWS(wsOli, []float64{p[0], p[1]}, warmOli, carry)
		if err != nil {
			t.Fatalf("link %d: oligopoly: %v", n, err)
		}
		bitEqSlice(t, "chain s", sOli, sDuo)
		for k := 0; k < 2; k++ {
			bitEqNet(t, "chain net", stOli.Net[k], stDuo.Net[k])
		}
		warmDuo = append(warmDuo[:0], sDuo...)
		warmOli = append(warmOli[:0], sOli...)
	}
}

// TestPriceEquilibriumMatchesDuopoly pins the N = 2 sequential
// best-response price competition to duopoly.Market.PriceEquilibrium bit
// for bit (prices, subsidies, final state).
func TestPriceEquilibriumMatchesDuopoly(t *testing.T) {
	for _, i := range []int{0, 1} {
		tc := fixtures()[i]
		pDuo, sDuo, stDuo, err := tc.duo.PriceEquilibrium(2, 0)
		if err != nil {
			t.Fatalf("%s: duopoly: %v", tc.name, err)
		}
		pOli, sOli, stOli, err := tc.oli.PriceEquilibrium(2, 0)
		if err != nil {
			t.Fatalf("%s: oligopoly: %v", tc.name, err)
		}
		bitEqSlice(t, tc.name+": p*", pOli, pDuo[:])
		bitEqSlice(t, tc.name+": s*", sOli, sDuo)
		for k := 0; k < 2; k++ {
			bitEqNet(t, tc.name+": net", stOli.Net[k], stDuo.Net[k])
		}
	}
}

// TestMonopolyBenchmarkMatchesDuopolyBitwise pins the N = 1 special case:
// the oligopoly monopoly benchmark (implemented as a one-ISP market with
// µ = Σµ_k) must reproduce the duopoly's dedicated monoWorkspace scan bit
// for bit — optimal price, physical state, and subsidy profile.
func TestMonopolyBenchmarkMatchesDuopolyBitwise(t *testing.T) {
	for _, scheme := range []string{"", solver.AndersonName, solver.AutoName} {
		for _, tc := range fixtures() {
			duo, oli := *tc.duo, *tc.oli
			duo.Solver, oli.Solver = scheme, scheme
			pDuo, stDuo, sDuo, err := duo.MonopolyBenchmark(2)
			if err != nil {
				t.Fatalf("%s/%s: duopoly: %v", scheme, tc.name, err)
			}
			pOli, stOli, sOli, err := oli.MonopolyBenchmark(2)
			if err != nil {
				t.Fatalf("%s/%s: oligopoly: %v", scheme, tc.name, err)
			}
			ctx := scheme + "/" + tc.name
			bitEq(t, ctx+": p", pOli, pDuo)
			bitEqSlice(t, ctx+": s", sOli, sDuo)
			bitEqNet(t, ctx+": state", stOli, stDuo)
		}
	}
}

// TestSolveMatchesDuopoly pins the one-shot allocating Solve entry at fixed
// (p, s) — the path the workspace kernels must agree with — to the duopoly
// one-shot, bit for bit.
func TestSolveMatchesDuopoly(t *testing.T) {
	for _, tc := range fixtures() {
		s := []float64{0.2, 0, 0.4}
		if tc.oli.Q == 0 {
			s = []float64{0, 0, 0}
		}
		stDuo, err := tc.duo.Solve(tc.p, s)
		if err != nil {
			t.Fatalf("%s: duopoly: %v", tc.name, err)
		}
		stOli, err := tc.oli.Solve([]float64{tc.p[0], tc.p[1]}, s)
		if err != nil {
			t.Fatalf("%s: oligopoly: %v", tc.name, err)
		}
		bitEqSlice(t, tc.name+": shares", stOli.Shares, stDuo.Shares[:])
		for k := 0; k < 2; k++ {
			bitEqNet(t, tc.name+": net", stOli.Net[k], stDuo.Net[k])
		}
		for i := range s {
			bitEq(t, tc.name+": utility", tc.oli.Utility(i, s, stOli), tc.duo.Utility(i, s, stDuo))
		}
	}
}

// TestTelemetryRecordsUnderAuto checks the Telemetry plumbing: an N = 3
// market solved under the auto meta-scheme must record solver decisions,
// and recording must not change iterates (solve with and without telemetry
// agree bitwise).
func TestTelemetryRecordsUnderAuto(t *testing.T) {
	m := &Market{
		CPs: testCPs(), Util: econ.LinearUtilization{},
		Mu: []float64{0.3, 0.4, 0.5}, Sigma: 3, Q: 1,
		Solver: solver.AutoName,
	}
	p := []float64{0.8, 1.0, 1.2}
	sPlain, stPlain, err := m.CPEquilibrium(p, nil)
	if err != nil {
		t.Fatalf("plain: %v", err)
	}
	var tel solver.Telemetry
	mt := *m
	mt.Telemetry = &tel
	sTel, stTel, err := mt.CPEquilibrium(p, nil)
	if err != nil {
		t.Fatalf("telemetry: %v", err)
	}
	bitEqSlice(t, "s under telemetry", sTel, sPlain)
	for k := range stPlain.Net {
		bitEqNet(t, "net under telemetry", stTel.Net[k], stPlain.Net[k])
	}
	snap := tel.Snapshot()
	if snap.Total() == 0 {
		t.Fatalf("telemetry recorded no solves: %+v", snap)
	}
}
