package oligopoly

import (
	"testing"
)

// BenchmarkOligopolyCPEquilibrium measures one N = 3 CP-equilibrium solve at
// fixed prices through the one-shot allocating entry.
func BenchmarkOligopolyCPEquilibrium(b *testing.B) {
	m := smallMarketN(3)
	p := []float64{0.9, 1.0, 1.1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.CPEquilibrium(p, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOligopolyWS is the workspace counterpart: the same N = 3 solve on
// a reused workspace, which must report zero allocations.
func BenchmarkOligopolyWS(b *testing.B) {
	m := smallMarketN(3)
	ws := NewWorkspace()
	p := []float64{0.9, 1.0, 1.1}
	if _, _, err := m.CPEquilibriumWS(ws, p, nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.CPEquilibriumWS(ws, p, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOligopolyChainWS measures the sweep inner loop: warm-carried,
// φ-chained consecutive solves on one workspace (also zero-alloc).
func BenchmarkOligopolyChainWS(b *testing.B) {
	m := smallMarketN(3)
	ws := NewWorkspace()
	p := []float64{0.9, 1.0, 1.1}
	s, _, err := m.CPEquilibriumChainWS(ws, p, nil, false)
	if err != nil {
		b.Fatal(err)
	}
	warm := make([]float64, len(s))
	copy(warm, s)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, _, err := m.CPEquilibriumChainWS(ws, p, warm, true)
		if err != nil {
			b.Fatal(err)
		}
		copy(warm, s)
	}
}

// BenchmarkOligopolyPriceEquilibrium measures the full N = 3 two-level
// solve: sequential price best responses with CP re-equilibration inside
// every revenue evaluation.
func BenchmarkOligopolyPriceEquilibrium(b *testing.B) {
	m := smallMarketN(3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := m.PriceEquilibrium(2, 6); err != nil {
			b.Fatal(err)
		}
	}
}
