// Package oligopoly generalizes the duopoly package's two-ISP access
// competition to N competing access networks sharing one CP population —
// the paper's §6 competition direction taken to its natural market
// structure. N access ISPs with capacities µ₁..µ_N set usage prices
// p₁..p_N; users split across them by the same logit price-attraction rule
// (softmax over −σ·p_k), each CP chooses one subsidy s_i ∈ [0, q] that
// applies on every network, and each network forms its own utilization
// fixed point. On top of the CPs' equilibrium the ISPs compete in prices by
// sequential best responses on revenue.
//
// The package is the duopoly machinery with the player count lifted from 2
// to N, statement for statement: the CP equilibrium is a solver.Problem
// dispatched through the shared fixed-point registry (Market.Solver selects
// any registered scheme, including "auto"; Market.Telemetry observes the
// meta-solver's branches), solves run on a reusable Workspace whose warm
// path performs zero heap allocations (TestOligopolyWSAllocFree), and the
// per-network utilization kernels default warm with the same
// reset-at-solve-boundary / carry-within-chain discipline
// (CPEquilibriumChainWS). Because every float operation is performed in the
// same order as the duopoly code, the N = 2 instance reproduces
// duopoly.Market bit for bit and the N = 1 instance reproduces the
// capacity-equivalent monopoly benchmark bit for bit — pinned by the
// equivalence suite in backend_test.go, which is what makes the
// generalization trustworthy.
package oligopoly

import (
	"errors"
	"fmt"
	"math"

	"neutralnet/internal/econ"
	"neutralnet/internal/game"
	"neutralnet/internal/model"
	"neutralnet/internal/numeric"
	"neutralnet/internal/solver"
)

// cpGridPts is the grid resolution of the per-coordinate grid+golden
// maximization, matching the duopoly (and historical) 17-point search so
// the N = 2 best responses are bit-identical to duopoly.Workspace.Best.
const cpGridPts = 17

// cpTol and cpMaxIter bound the CP fixed-point iteration, matching the
// duopoly constants.
const (
	cpTol     = 1e-7
	cpMaxIter = 200
)

// ErrCPNotConverged is returned when the CP fixed point exhausts its
// iteration budget (after any configured fallback retry). It satisfies
// errors.Is(err, game.ErrNotConverged), like the duopoly sentinel; the
// message matches the historical string.
var ErrCPNotConverged error = game.NotConverged("oligopoly: CP equilibrium did not converge")

// Market is an N-ISP access market sharing one CP catalog. The player count
// is len(Mu).
type Market struct {
	CPs   []model.CP
	Util  econ.Utilization
	Mu    []float64 // per-ISP capacities; len(Mu) = N ≥ 1
	Sigma float64   // logit price sensitivity of ISP choice
	Q     float64   // subsidy cap (policy)
	// Solver names the fixed-point scheme the CP equilibrium (and the
	// monopoly benchmark) dispatch through the solver registry; the empty
	// string selects the default Gauss–Seidel.
	Solver string
	// UtilSolver selects the utilization root kernel of the workspace
	// paths' per-network physical solves (a model workspace solver name).
	// The empty default selects the warm kernel (model.UtilBrentWarm), as
	// in the duopoly; model.UtilBrent restores the cold bit-identical
	// path. Seeds reset at every equilibrium-solve boundary, so results
	// depend only on the solve itself, never on workspace history.
	UtilSolver string
	// Telemetry, when non-nil, receives the solver layer's decision
	// counters from every CP equilibrium and monopoly-benchmark solve. The
	// pointer may be shared across parallel sweep workers — the counters
	// are atomic — and recording never affects iterates.
	Telemetry *solver.Telemetry
	// Fallback, when non-empty and naming a different registered scheme
	// than Solver (after empty→default resolution), arms the
	// graceful-degradation ladder on the CP equilibrium: a solve that
	// exhausts its iteration budget without converging is retried once
	// through the fallback scheme from the primary's final iterate.
	// Retries are recorded in Telemetry (BranchCounts.Fallbacks).
	Fallback string
}

// Players returns N, the number of competing access ISPs.
func (m *Market) Players() int { return len(m.Mu) }

// utilKernel resolves the market's utilization kernel name, applying the
// warm hot-path default.
func (m *Market) utilKernel() string {
	if m.UtilSolver == "" {
		return model.UtilBrentWarm
	}
	return m.UtilSolver
}

// Validate checks the market's structural preconditions.
func (m *Market) Validate() error {
	if len(m.CPs) == 0 {
		return errors.New("oligopoly: no CPs")
	}
	if len(m.Mu) == 0 {
		return errors.New("oligopoly: no ISPs (empty capacity vector)")
	}
	for k, mu := range m.Mu {
		if mu <= 0 {
			return fmt.Errorf("oligopoly: capacity %d must be positive, got %g", k, mu)
		}
	}
	if m.Util == nil {
		return errors.New("oligopoly: nil utilization map")
	}
	if m.Sigma < 0 || m.Q < 0 {
		return fmt.Errorf("oligopoly: negative σ (%g) or q (%g)", m.Sigma, m.Q)
	}
	return nil
}

// SharesInto writes the logit user split across the N ISPs at prices p into
// dst (both of length N): dst[k] = e^{−σ·p_k} / Σ_j e^{−σ·p_j}. The
// accumulation order matches duopoly.Market.Shares, so the N = 2 split is
// bit-identical to it.
//
//neutralnet:hotpath
func (m *Market) SharesInto(dst, p []float64) {
	sum := 0.0
	for k := range dst {
		dst[k] = math.Exp(-m.Sigma * p[k])
		sum += dst[k]
	}
	for k := range dst {
		dst[k] /= sum
	}
}

// Shares returns the logit user split at prices p as a fresh slice.
func (m *Market) Shares(p []float64) []float64 {
	dst := make([]float64, len(p))
	m.SharesInto(dst, p)
	return dst
}

// State is the solved N-network physical state under prices p and
// subsidies s.
//
// States produced by Market.Solve and the public equilibrium entry points
// own their slices. States produced by the workspace kernels BORROW the
// workspace's buffers and must be escaped with Clone before being retained
// past the next solve.
type State struct {
	P      []float64
	Shares []float64
	Net    []model.State // per-ISP utilization/populations/throughputs
}

// Clone returns a deep copy of the state, for callers that retain
// workspace-borrowed states across solves.
func (st State) Clone() State {
	st.P = append([]float64(nil), st.P...)
	st.Shares = append([]float64(nil), st.Shares...)
	net := make([]model.State, len(st.Net))
	for k := range st.Net {
		net[k] = st.Net[k].Clone()
	}
	st.Net = net
	return st
}

// TotalThroughput returns Σ_k θ_i^k for CP i across all networks.
func (st State) TotalThroughput(i int) float64 {
	total := 0.0
	for k := range st.Net {
		total += st.Net[k].Theta[i]
	}
	return total
}

// Revenue returns ISP k's usage revenue p_k·Σθ^k.
func (st State) Revenue(k int) float64 {
	return st.P[k] * st.Net[k].TotalThroughput()
}

// Solve computes all networks' fixed points at prices p and subsidies s.
// It is the one-shot allocating entry; hot loops hold a Workspace.
func (m *Market) Solve(p, s []float64) (State, error) {
	if len(p) != len(m.Mu) {
		return State{}, fmt.Errorf("oligopoly: %d prices for %d ISPs", len(p), len(m.Mu))
	}
	if len(s) != len(m.CPs) {
		return State{}, &game.DimensionError{Pkg: "oligopoly", Got: len(s), Want: len(m.CPs)}
	}
	st := State{
		P:      append([]float64(nil), p...),
		Shares: m.Shares(p),
		Net:    make([]model.State, len(m.Mu)),
	}
	for k := range m.Mu {
		sys := &model.System{CPs: m.CPs, Mu: m.Mu[k], Util: m.Util}
		pops := make([]float64, len(m.CPs))
		for i, cp := range m.CPs {
			pops[i] = st.Shares[k] * cp.Demand.M(p[k]-s[i])
		}
		ns, err := sys.Solve(pops)
		if err != nil {
			return State{}, fmt.Errorf("oligopoly: network %d: %w", k, err)
		}
		st.Net[k] = ns
	}
	return st, nil
}

// Utility returns CP i's summed utility (v_i − s_i)·Σ_k θ_i^k at the state.
func (m *Market) Utility(i int, s []float64, st State) float64 {
	return (m.CPs[i].Value - s[i]) * st.TotalThroughput(i)
}

// Workspace owns the reusable buffers of one oligopoly-solving goroutine:
// the N per-network physical workspaces, the subsidy iterate, the pre-bound
// 1-D utility closure the per-CP searches run on, and the cached fixed-point
// solver instance. It is NOT safe for concurrent use. It implements
// solver.Problem over the CP best-response map, which is how the CP
// equilibrium is dispatched through the registry.
type Workspace struct {
	m      *Market
	sys    []model.System // stable per-network systems the physical workspaces bind to
	net    []*model.Workspace
	states []model.State // per-network state buffer (borrowed by stateWS results)
	s      []float64     // subsidy iterate (borrowed by CPEquilibriumWS results)
	p      []float64
	shares []float64

	i          int // player the 1-D closure evaluates for
	utilityFn  func(float64) float64
	utilityErr error

	fp   solver.Cached // cached fixed-point instance for the last-used scheme
	fbFp solver.Cached // fallback-ladder instance, cached apart from fp
}

// NewWorkspace returns an empty workspace; buffers are sized on first bind.
func NewWorkspace() *Workspace {
	ws := &Workspace{}
	ws.utilityFn = func(x float64) float64 {
		old := ws.s[ws.i]
		ws.s[ws.i] = x
		u, err := ws.utilityOne(ws.i)
		ws.s[ws.i] = old
		if err != nil {
			ws.utilityErr = err
			return math.Inf(-1)
		}
		return u
	}
	return ws
}

// bind points the workspace at market m under prices p and sizes every
// buffer for its ISP and CP counts. Rebinding between markets of the same
// shape is allocation-free.
func (ws *Workspace) bind(m *Market, p []float64) {
	ws.m = m
	nISP := len(m.Mu)
	if cap(ws.net) < nISP {
		grown := make([]*model.Workspace, nISP)
		copy(grown, ws.net)
		for k := len(ws.net); k < nISP; k++ {
			grown[k] = model.NewWorkspace()
		}
		ws.net = grown
		ws.sys = make([]model.System, nISP)
		ws.states = make([]model.State, nISP)
		ws.p = make([]float64, nISP)
		ws.shares = make([]float64, nISP)
	}
	ws.net = ws.net[:nISP]
	ws.sys = ws.sys[:nISP]
	ws.states = ws.states[:nISP]
	ws.p = ws.p[:nISP]
	ws.shares = ws.shares[:nISP]
	copy(ws.p, p)
	m.SharesInto(ws.shares, ws.p)
	n := len(m.CPs)
	for k := 0; k < nISP; k++ {
		ws.sys[k] = model.System{CPs: m.CPs, Mu: m.Mu[k], Util: m.Util}
		ws.net[k].Bind(&ws.sys[k])
	}
	if cap(ws.s) < n {
		ws.s = make([]float64, n)
	}
	ws.s = ws.s[:n]
}

// prime refreshes every network's population buffer for the full current
// iterate; the evaluation closure afterwards only touches the component it
// varies, so a best-response search pays the full N·n-demand evaluation
// once.
//
//neutralnet:hotpath
func (ws *Workspace) prime() {
	for k := range ws.net {
		mk := ws.net[k].M()
		for i, cp := range ws.m.CPs {
			mk[i] = ws.shares[k] * cp.Demand.M(ws.p[k]-ws.s[i])
		}
	}
}

// utilityOne evaluates CP i's summed utility at the current iterate,
// re-solving every network's fixed point after refreshing only component i
// of each population buffer. The other components are bit-identical to a
// full recompute, so the value matches the one-shot Solve path exactly.
//
//neutralnet:hotpath
func (ws *Workspace) utilityOne(i int) (float64, error) {
	total := 0.0
	for k := range ws.net {
		ws.net[k].M()[i] = ws.shares[k] * ws.m.CPs[i].Demand.M(ws.p[k]-ws.s[i])
		st, err := ws.sys[k].SolveInto(ws.net[k])
		if err != nil {
			return 0, fmt.Errorf("oligopoly: network %d: %w", k, err)
		}
		total += st.Theta[i]
	}
	return (ws.m.CPs[i].Value - ws.s[i]) * total, nil
}

// stateWS solves every network at the current iterate, entirely in
// workspace buffers. The returned state borrows them.
//
//neutralnet:hotpath
func (ws *Workspace) stateWS() (State, error) {
	ws.prime()
	st := State{P: ws.p, Shares: ws.shares, Net: ws.states}
	for k := range ws.net {
		ns, err := ws.sys[k].SolveInto(ws.net[k])
		if err != nil {
			return State{}, fmt.Errorf("oligopoly: network %d: %w", k, err)
		}
		ws.states[k] = ns
	}
	return st, nil
}

// --- solver.Problem ---------------------------------------------------------

// N is the number of CP players.
func (ws *Workspace) N() int { return len(ws.m.CPs) }

// Box is the subsidy interval [0, q].
func (ws *Workspace) Box() (lo, hi float64) { return 0, ws.m.Q }

// Best computes CP i's best response against the profile x by grid+golden
// search of the summed utility (17-point grid, matching the duopoly). The
// solver layer iterates on the workspace's own s buffer, so x normally
// aliases it; a defensive copy covers solvers that present a different
// iterate.
//
//neutralnet:hotpath
func (ws *Workspace) Best(i int, x []float64) (float64, error) {
	if &x[0] != &ws.s[0] {
		copy(ws.s, x)
	}
	ws.i = i
	ws.prime()
	ws.utilityErr = nil
	best := 0.0
	if ws.m.Q > 0 {
		best, _ = numeric.MaximizeOnInterval(ws.utilityFn, 0, ws.m.Q, cpGridPts)
	}
	if ws.utilityErr != nil {
		return 0, ws.utilityErr
	}
	return best, nil
}

// CPEquilibriumWS solves the CPs' subsidization game at fixed prices on the
// caller-owned workspace, dispatching the fixed-point iteration through the
// solver registry under m.Solver. warm may be nil. The returned profile and
// state BORROW the workspace's buffers — they are valid only until the next
// solve and must be copied/Cloned to be retained. A warm workspace performs
// zero heap allocations per call.
//
//neutralnet:hotpath
func (m *Market) CPEquilibriumWS(ws *Workspace, p []float64, warm []float64) ([]float64, State, error) {
	return m.CPEquilibriumChainWS(ws, p, warm, false)
}

// CPEquilibriumChainWS is CPEquilibriumWS for deterministic warm chains:
// with carryUtilSeed set, every network's utilization seed survives the
// solve boundary, so φ chains across the consecutive points of a sweep
// segment exactly as the subsidy profile does through warm. Only
// fixed-order callers may set it — a workspace carrying seeds from an
// arbitrary earlier solve would make warm-kernel results depend on
// scheduling, which the segmented sweep's bit-identical-at-any-worker-count
// guarantee forbids.
//
//neutralnet:hotpath
func (m *Market) CPEquilibriumChainWS(ws *Workspace, p []float64, warm []float64, carryUtilSeed bool) ([]float64, State, error) {
	if len(p) != len(m.Mu) {
		return nil, State{}, fmt.Errorf("oligopoly: %d prices for %d ISPs", len(p), len(m.Mu))
	}
	ws.bind(m, p)
	for k := range ws.net {
		if err := ws.net[k].SetUtilSolver(m.utilKernel()); err != nil {
			return nil, State{}, err
		}
		// Fresh seed per equilibrium solve unless the caller chains it:
		// within the solve the seed then spans the many per-network root
		// finds, which is where the warm win lives.
		if !carryUtilSeed {
			ws.net[k].ResetUtilSeed()
		}
	}
	for i := range ws.s {
		si := 0.0
		if i < len(warm) {
			si = warm[i]
		}
		ws.s[i] = numeric.Clamp(si, 0, m.Q)
	}
	fp, err := ws.fp.Get(m.Solver)
	if err != nil {
		return nil, State{}, err
	}
	solver.Attach(fp, m.Telemetry)
	res, err := fp.Solve(ws, ws.s, cpTol, cpMaxIter)
	if err != nil {
		var ce *solver.ComponentError
		if errors.As(err, &ce) {
			return nil, State{}, ce.Err
		}
		return nil, State{}, err
	}
	if !res.Converged {
		// Graceful degradation: retry once through the fallback scheme from
		// the primary's final iterate before reporting non-convergence.
		fbName, fire := solver.FallbackName(m.Solver, m.Fallback)
		if !fire {
			return nil, State{}, ErrCPNotConverged
		}
		fb, ferr := ws.fbFp.Get(fbName)
		if ferr != nil {
			return nil, State{}, ferr
		}
		m.Telemetry.RecordFallback()
		solver.Attach(fb, m.Telemetry)
		res, err = fb.Solve(ws, ws.s, cpTol, cpMaxIter)
		if err != nil {
			var ce *solver.ComponentError
			if errors.As(err, &ce) {
				return nil, State{}, ce.Err
			}
			return nil, State{}, err
		}
		if !res.Converged {
			return nil, State{}, ErrCPNotConverged
		}
	}
	st, err := ws.stateWS()
	if err != nil {
		return nil, State{}, err
	}
	return ws.s, st, nil
}

// CPEquilibrium solves the CPs' subsidization game at fixed prices. warm may
// be nil. It is the one-shot adapter over CPEquilibriumWS: it allocates a
// fresh workspace and escapes the result, so the returned profile and state
// own their slices.
func (m *Market) CPEquilibrium(p []float64, warm []float64) ([]float64, State, error) {
	s, st, err := m.CPEquilibriumWS(NewWorkspace(), p, warm)
	if err != nil {
		return nil, State{}, err
	}
	return append([]float64(nil), s...), st.Clone(), nil
}

// PriceEquilibrium solves the ISPs' price competition on [0, pMax] by
// sequential best responses in player order, with the CPs re-equilibrating
// inside every revenue evaluation. One workspace threads the whole
// competition: each CP equilibrium is warm-started from the previous one
// and solved allocation-free. It returns the equilibrium prices, the CP
// subsidy profile there, and the final state; all returned slices are
// owned. The search constants match duopoly.Market.PriceEquilibrium, so the
// N = 2 competition is bit-identical to it.
func (m *Market) PriceEquilibrium(pMax float64, maxRounds int) ([]float64, []float64, State, error) {
	if err := m.Validate(); err != nil {
		return nil, nil, State{}, err
	}
	if pMax <= 0 {
		return nil, nil, State{}, errors.New("oligopoly: pMax must be positive")
	}
	if maxRounds <= 0 {
		maxRounds = 30
	}
	p := make([]float64, len(m.Mu))
	for k := range p {
		p[k] = pMax / 2
	}
	ws := NewWorkspace()
	cand := make([]float64, len(p))
	var warmBuf, warm []float64
	revenueAt := func(k int, pk float64) float64 {
		copy(cand, p)
		cand[k] = pk
		s, st, err := m.CPEquilibriumWS(ws, cand, warm)
		if err != nil {
			return math.Inf(-1)
		}
		warm = numeric.CopyProfile(&warmBuf, s)
		return st.Revenue(k)
	}
	const tol = 1e-4
	for round := 0; round < maxRounds; round++ {
		moved := 0.0
		for k := range p {
			best, _ := numeric.MaximizeOnInterval(func(x float64) float64 { return revenueAt(k, x) }, 1e-3, pMax, 13)
			if d := math.Abs(best - p[k]); d > moved {
				moved = d
			}
			p[k] = best
		}
		if moved < tol {
			break
		}
	}
	s, st, err := m.CPEquilibriumWS(ws, p, warm)
	if err != nil {
		return p, nil, State{}, err
	}
	return p, append([]float64(nil), s...), st.Clone(), nil
}

// MonopolyBenchmark solves the capacity-equivalent single-ISP problem
// (µ = Σ_k µ_k, all users attached) at its revenue-optimal price, for
// comparison against the oligopoly outcome. It is implemented as the N = 1
// special case of the market itself: a one-ISP market attaches every user
// (the logit share of a single player is exactly 1), so the 15-point
// warm-chained price scan reproduces duopoly.Market.MonopolyBenchmark bit
// for bit.
func (m *Market) MonopolyBenchmark(pMax float64) (p float64, st model.State, s []float64, err error) {
	if err := m.Validate(); err != nil {
		return 0, model.State{}, nil, err
	}
	muTotal := 0.0
	for _, mu := range m.Mu {
		muTotal += mu
	}
	mono := Market{
		CPs: m.CPs, Util: m.Util, Mu: []float64{muTotal},
		Sigma: m.Sigma, Q: m.Q,
		Solver: m.Solver, UtilSolver: m.UtilSolver, Telemetry: m.Telemetry,
	}
	ws := NewWorkspace()
	pk := make([]float64, 1)
	best, bestP := math.Inf(-1), 0.0
	var bestS, warmBuf, warm []float64
	for k := 1; k <= 15; k++ {
		pk[0] = pMax * float64(k) / 15
		sk, stk, err := mono.CPEquilibriumWS(ws, pk, warm)
		if err != nil {
			return 0, model.State{}, nil, err
		}
		warm = numeric.CopyProfile(&warmBuf, sk)
		if r := pk[0] * stk.Net[0].TotalThroughput(); r > best {
			best, bestP = r, pk[0]
			bestS = append(bestS[:0], sk...)
		}
	}
	pk[0] = bestP
	sFin, stFin, err := mono.CPEquilibriumWS(ws, pk, bestS)
	if err != nil {
		return 0, model.State{}, nil, err
	}
	return bestP, stFin.Net[0].Clone(), append([]float64(nil), sFin...), nil
}

// Welfare returns Σ_i v_i·Σ_k θ_i^k at an oligopoly state.
func (m *Market) Welfare(st State) float64 {
	w := 0.0
	for i, cp := range m.CPs {
		w += cp.Value * st.TotalThroughput(i)
	}
	return w
}
