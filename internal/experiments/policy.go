package experiments

import (
	"fmt"
	"runtime"

	"neutralnet/internal/game"
	"neutralnet/internal/model"
	"neutralnet/internal/report"
	"neutralnet/internal/sweep"
	"neutralnet/internal/welfare"
)

// PolicySweep is the shared computation behind Figures 7–11: the
// subsidization equilibrium on the eight-CP grid for every (q, p) pair, with
// the ISP quantities (revenue, welfare) and the per-CP equilibrium
// quantities (subsidy, population, throughput, utility).
type PolicySweep struct {
	Sys   *model.System
	Q     []float64
	P     []float64
	Names []string

	// Revenue and Welfare are indexed [qIdx][pIdx].
	Revenue [][]float64
	Welfare [][]float64
	Phi     [][]float64
	// Surplus is the consumer-surplus extension Σ_i ∫_{t_i}^∞ m_i(x) dx at
	// the equilibrium's effective prices (not a paper metric; see
	// EXPERIMENTS.md).
	Surplus [][]float64

	// Per-CP quantities are indexed [qIdx][pIdx][cp].
	S     [][][]float64
	M     [][][]float64
	Theta [][][]float64
	U     [][][]float64
}

// RunPolicySweep computes the sweep on pPts price points over [0, pMax] for
// the paper's five policy levels. Pass 0, 0 for the defaults (41 points on
// [0, 2]). Equilibria along the price axis are warm-started from the
// previous point, matching how the equilibrium path varies continuously
// (Theorem 6); policy levels are computed in parallel.
func RunPolicySweep(pPts int, pMax float64) (*PolicySweep, error) {
	return RunPolicySweepOn(EightCPGrid(), QLevels(), pPts, pMax, runtime.GOMAXPROCS(0))
}

// RunPolicySweepOn runs the sweep on a caller-supplied system and policy
// levels (used by ablations, tests and cmd/figures) over `workers` workers
// (≤ 0 selects 1). It delegates to the shared sweep core, which chains warm
// starts along fixed snake-order segments of the (q, p) grid; the result is
// identical for every worker count.
func RunPolicySweepOn(sys *model.System, qLevels []float64, pPts int, pMax float64, workers int) (*PolicySweep, error) {
	if pPts < 2 {
		pPts = 41
	}
	if pMax <= 0 {
		pMax = 2
	}
	res, err := sweep.Run(sys, sweep.Grid{P: Grid(0, pMax, pPts), Q: qLevels},
		sweep.Config{Workers: workers, WarmStart: true})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}

	sw := &PolicySweep{
		Sys:   sys,
		Q:     qLevels,
		P:     res.Grid.P,
		Names: res.Names,
	}
	alloc2 := func() [][]float64 { return make([][]float64, len(sw.Q)) }
	sw.Revenue, sw.Welfare, sw.Phi, sw.Surplus = alloc2(), alloc2(), alloc2(), alloc2()
	sw.S = make([][][]float64, len(sw.Q))
	sw.M = make([][][]float64, len(sw.Q))
	sw.Theta = make([][][]float64, len(sw.Q))
	sw.U = make([][][]float64, len(sw.Q))

	for qi := range sw.Q {
		sw.Revenue[qi] = make([]float64, pPts)
		sw.Welfare[qi] = make([]float64, pPts)
		sw.Phi[qi] = make([]float64, pPts)
		sw.Surplus[qi] = make([]float64, pPts)
		sw.S[qi] = make([][]float64, pPts)
		sw.M[qi] = make([][]float64, pPts)
		sw.Theta[qi] = make([][]float64, pPts)
		sw.U[qi] = make([][]float64, pPts)
		for pi, p := range sw.P {
			pt := res.At(pi, qi, 0)
			prices := game.EffectivePrices(p, pt.Eq.S)
			sw.Revenue[qi][pi] = pt.Revenue
			sw.Welfare[qi][pi] = pt.Welfare
			sw.Phi[qi][pi] = pt.Eq.State.Phi
			sw.Surplus[qi][pi] = welfare.ConsumerSurplus(sys, prices)
			sw.S[qi][pi] = pt.Eq.S
			sw.M[qi][pi] = pt.Eq.State.M
			sw.Theta[qi][pi] = pt.Eq.State.Theta
			sw.U[qi][pi] = pt.Eq.U
		}
	}
	return sw, nil
}

// perCP extracts series [qIdx] over p of the given per-CP quantity for CP i.
func perCP(data [][][]float64, qi, i int) []float64 {
	out := make([]float64, len(data[qi]))
	for pi := range data[qi] {
		out[pi] = data[qi][pi][i]
	}
	return out
}

// SubsidySeries returns s_i(p) for CP i at policy level index qi (Figure 8).
func (sw *PolicySweep) SubsidySeries(qi, i int) []float64 { return perCP(sw.S, qi, i) }

// PopulationSeries returns m_i(p) for CP i at policy level qi (Figure 9).
func (sw *PolicySweep) PopulationSeries(qi, i int) []float64 { return perCP(sw.M, qi, i) }

// ThroughputSeries returns θ_i(p) for CP i at policy level qi (Figure 10).
func (sw *PolicySweep) ThroughputSeries(qi, i int) []float64 { return perCP(sw.Theta, qi, i) }

// UtilitySeries returns U_i(p) for CP i at policy level qi (Figure 11).
func (sw *PolicySweep) UtilitySeries(qi, i int) []float64 { return perCP(sw.U, qi, i) }

// Fig7Table renders Figure 7's rows: p, then R and W for each policy level.
func (sw *PolicySweep) Fig7Table() *report.Table {
	header := []string{"p"}
	for _, q := range sw.Q {
		header = append(header, fmt.Sprintf("R(q=%g)", q))
	}
	for _, q := range sw.Q {
		header = append(header, fmt.Sprintf("W(q=%g)", q))
	}
	t := report.NewTable(header...)
	for pi, p := range sw.P {
		cells := []interface{}{p}
		for qi := range sw.Q {
			cells = append(cells, sw.Revenue[qi][pi])
		}
		for qi := range sw.Q {
			cells = append(cells, sw.Welfare[qi][pi])
		}
		t.AddRow(cells...)
	}
	return t
}

// panelTable renders one per-CP figure (8/9/10/11): for each CP a block of
// columns, one per policy level.
func (sw *PolicySweep) panelTable(name string, data [][][]float64) *report.Table {
	header := []string{"p"}
	for _, cp := range sw.Names {
		for _, q := range sw.Q {
			header = append(header, fmt.Sprintf("%s[%s,q=%g]", name, cp, q))
		}
	}
	t := report.NewTable(header...)
	for pi, p := range sw.P {
		cells := []interface{}{p}
		for i := range sw.Names {
			for qi := range sw.Q {
				cells = append(cells, data[qi][pi][i])
			}
		}
		t.AddRow(cells...)
	}
	return t
}

// Fig8Table renders the equilibrium subsidies of Figure 8.
func (sw *PolicySweep) Fig8Table() *report.Table { return sw.panelTable("s", sw.S) }

// Fig9Table renders the equilibrium populations of Figure 9.
func (sw *PolicySweep) Fig9Table() *report.Table { return sw.panelTable("m", sw.M) }

// Fig10Table renders the equilibrium throughputs of Figure 10.
func (sw *PolicySweep) Fig10Table() *report.Table { return sw.panelTable("theta", sw.Theta) }

// Fig11Table renders the equilibrium utilities of Figure 11.
func (sw *PolicySweep) Fig11Table() *report.Table { return sw.panelTable("U", sw.U) }

// Fig7Charts renders the two panels of Figure 7 as ASCII charts with one
// series per policy level.
func (sw *PolicySweep) Fig7Charts() string {
	var rSeries, wSeries []report.Series
	for qi, q := range sw.Q {
		rSeries = append(rSeries, report.Series{Name: fmt.Sprintf("q=%g", q), X: sw.P, Y: sw.Revenue[qi]})
		wSeries = append(wSeries, report.Series{Name: fmt.Sprintf("q=%g", q), X: sw.P, Y: sw.Welfare[qi]})
	}
	return report.Chart("Fig 7 (left): ISP revenue vs price", 64, 14, rSeries...) + "\n" +
		report.Chart("Fig 7 (right): system welfare vs price", 64, 14, wSeries...)
}

// PanelCharts renders a sparkline block per CP and policy level for one of
// the per-CP figures; which selects the data ("s", "m", "theta", "U").
func (sw *PolicySweep) PanelCharts(which string) string {
	var data [][][]float64
	switch which {
	case "s":
		data = sw.S
	case "m":
		data = sw.M
	case "theta":
		data = sw.Theta
	case "U":
		data = sw.U
	default:
		return ""
	}
	out := fmt.Sprintf("Figure panels for %q (sparklines over p, one row per CP/q)\n", which)
	for i, name := range sw.Names {
		for qi, q := range sw.Q {
			out += fmt.Sprintf("  %-12s q=%-4g %s\n", name, q, report.Sparkline(perCP(data, qi, i)))
		}
	}
	return out
}
