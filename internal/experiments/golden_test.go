package experiments

import (
	"math"
	"testing"
)

// Golden regression tests: these pin the *measured* headline numbers of this
// reproduction (recorded in EXPERIMENTS.md) with generous tolerances. They
// are not paper numbers — the paper publishes plots — but they freeze this
// repository's own results so solver regressions surface as diffs here
// rather than as silently shifted figures.

func near(got, want, rel float64) bool {
	return math.Abs(got-want) <= rel*math.Max(math.Abs(want), 1e-12)
}

func TestGoldenFig4(t *testing.T) {
	r, err := Fig4(41, 0)
	if err != nil {
		t.Fatal(err)
	}
	// θ(0) = 1.109: the nine-CP grid at zero price.
	if !near(r.Theta[0], 1.10904, 1e-3) {
		t.Fatalf("θ(0) = %v, golden 1.10904", r.Theta[0])
	}
	// Revenue peak at p = 1.50, R = 0.4691 on the 41-point grid.
	pk := peakIdx(r.Revenue)
	if !near(r.P[pk], 1.5, 0.08) {
		t.Fatalf("revenue peak at p = %v, golden 1.5", r.P[pk])
	}
	if !near(r.Revenue[pk], 0.46914, 1e-2) {
		t.Fatalf("peak revenue %v, golden 0.46914", r.Revenue[pk])
	}
}

func TestGoldenFig7AtUnitPrice(t *testing.T) {
	sw, err := RunPolicySweep(41, 0)
	if err != nil {
		t.Fatal(err)
	}
	// p = 1 sits at index 20 on the 41-point [0,2] grid.
	pi := 20
	if !near(sw.P[pi], 1, 1e-9) {
		t.Fatalf("grid misaligned: p[20] = %v", sw.P[pi])
	}
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"R(q=0,p=1)", sw.Revenue[0][pi], 0.252146},
		{"R(q=2,p=1)", sw.Revenue[4][pi], 0.433206},
		{"W(q=0,p=1)", sw.Welfare[0][pi], 0.189109},
		{"W(q=2,p=1)", sw.Welfare[4][pi], 0.389007},
	}
	for _, c := range checks {
		if !near(c.got, c.want, 5e-3) {
			t.Fatalf("%s = %v, golden %v", c.name, c.got, c.want)
		}
	}
}

func TestGoldenFig8SubsidiesAtUnitPrice(t *testing.T) {
	sw, err := RunPolicySweep(41, 0)
	if err != nil {
		t.Fatal(err)
	}
	pi, qi := 20, 4 // p = 1, q = 2
	want := map[string]float64{
		"a=2 b=2 v=0.5": 0,
		"a=2 b=5 v=0.5": 0,
		"a=5 b=2 v=0.5": 0.297641,
		"a=5 b=5 v=0.5": 0.298392,
		"a=2 b=2 v=1":   0.428812,
		"a=2 b=5 v=1":   0.451246,
		"a=5 b=2 v=1":   0.771525,
		"a=5 b=5 v=1":   0.780498,
	}
	for name, w := range want {
		i := FindCP(sw.Sys, name)
		if i < 0 {
			t.Fatalf("CP %q missing", name)
		}
		got := sw.S[qi][pi][i]
		if w == 0 {
			if got > 1e-4 {
				t.Fatalf("s[%s] = %v, golden 0", name, got)
			}
			continue
		}
		if !near(got, w, 1e-2) {
			t.Fatalf("s[%s] = %v, golden %v", name, got, w)
		}
	}
}

func TestGoldenExceptionCP(t *testing.T) {
	// The paper's highlighted exception: (2,5,1) at small p loses throughput
	// under q=2 relative to the baseline. Golden magnitudes from the 41-pt run.
	sw, err := RunPolicySweep(41, 0)
	if err != nil {
		t.Fatal(err)
	}
	exc := FindCP(sw.Sys, "a=2 b=5 v=1")
	pi := 1 // p = 0.05
	if !near(sw.Theta[0][pi][exc], 0.0184573, 2e-2) {
		t.Fatalf("baseline θ = %v, golden 0.01846", sw.Theta[0][pi][exc])
	}
	if !near(sw.Theta[4][pi][exc], 0.00224039, 5e-2) {
		t.Fatalf("deregulated θ = %v, golden 0.00224", sw.Theta[4][pi][exc])
	}
}

func TestGoldenFig10And11AtUnitPrice(t *testing.T) {
	sw, err := RunPolicySweep(41, 0)
	if err != nil {
		t.Fatal(err)
	}
	pi, qi := 20, 4 // p = 1, q = 2
	wantTheta := map[string]float64{
		"a=2 b=2 v=0.5": 0.0569027,
		"a=2 b=5 v=0.5": 0.0155137,
		"a=5 b=2 v=0.5": 0.0125478,
		"a=5 b=5 v=0.5": 0.00343386,
		"a=2 b=2 v=1":   0.134151,
		"a=2 b=5 v=1":   0.0382528,
		"a=5 b=2 v=1":   0.134151,
		"a=5 b=5 v=1":   0.0382528,
	}
	for name, w := range wantTheta {
		i := FindCP(sw.Sys, name)
		if !near(sw.Theta[qi][pi][i], w, 1e-2) {
			t.Fatalf("θ[%s] = %v, golden %v", name, sw.Theta[qi][pi][i], w)
		}
	}
	wantU := map[string]float64{
		"a=2 b=2 v=0.5": 0.0284514,
		"a=5 b=2 v=1":   0.0306502,
		"a=5 b=5 v=1":   0.00839655,
	}
	for name, w := range wantU {
		i := FindCP(sw.Sys, name)
		if !near(sw.U[qi][pi][i], w, 1e-2) {
			t.Fatalf("U[%s] = %v, golden %v", name, sw.U[qi][pi][i], w)
		}
	}
}
