package experiments

import (
	"fmt"
	"math"
)

// This file encodes the paper's qualitative claims about each figure as
// checkable predicates. They are the "shape" contract of the reproduction:
// we do not chase the paper's absolute numbers (the paper itself uses a
// styled model), but who wins, what is monotone, and where the exceptions
// sit must match. The integration tests and EXPERIMENTS.md run all of them.

// shapeTol absorbs solver noise in monotonicity comparisons.
const shapeTol = 1e-6

// CheckFig4 verifies Theorem 2's aggregate prediction on Figure 4's data:
// θ(p) strictly decreasing (beyond noise) and R(p) single-peaked (rises to
// one maximum then falls).
func CheckFig4(r Fig4Result) error {
	for i := 1; i < len(r.P); i++ {
		if r.Theta[i] > r.Theta[i-1]+shapeTol {
			return fmt.Errorf("Fig4: aggregate throughput rises at p=%g (%g -> %g)", r.P[i], r.Theta[i-1], r.Theta[i])
		}
	}
	if err := singlePeaked(r.P, r.Revenue); err != nil {
		return fmt.Errorf("Fig4 revenue: %w", err)
	}
	if peakIdx(r.Revenue) == 0 || peakIdx(r.Revenue) == len(r.Revenue)-1 {
		return fmt.Errorf("Fig4: revenue peak sits on the boundary, expected interior peak")
	}
	return nil
}

// CheckFig5 verifies the per-CP price effect of Figure 5: every CP's
// throughput eventually decreases in p, and the CPs with small α/β
// (congestion-sensitive, price-insensitive users) show an initial increase,
// per condition (8). On the nine-CP grid, (α,β) = (1,5) must rise initially
// and (5,1) must fall from the start.
func CheckFig5(r Fig5Result) error {
	for i, name := range r.Names {
		last := r.Theta[i][len(r.P)-1]
		peak := r.Theta[i][peakIdx(r.Theta[i])]
		if !(last < peak-shapeTol) && peak > shapeTol {
			return fmt.Errorf("Fig5: CP %s throughput never decreases over the price range", name)
		}
	}
	up, err := initiallyIncreasing(r, "a=1 b=5")
	if err != nil {
		return err
	}
	if !up {
		return fmt.Errorf("Fig5: CP a=1 b=5 (small α/β) should rise initially")
	}
	down, err := initiallyIncreasing(r, "a=5 b=1")
	if err != nil {
		return err
	}
	if down {
		return fmt.Errorf("Fig5: CP a=5 b=1 (large α/β) should fall from the start")
	}
	return nil
}

func initiallyIncreasing(r Fig5Result, name string) (bool, error) {
	for i, n := range r.Names {
		if n == name {
			return r.Theta[i][1] > r.Theta[i][0]+shapeTol/10, nil
		}
	}
	return false, fmt.Errorf("Fig5: CP %s not found", name)
}

// CheckFig7 verifies Corollary 1's headline on Figure 7: for every fixed
// price, both ISP revenue and welfare are nondecreasing in the policy cap q;
// and (the paper's caution) welfare decreases in p at every fixed q beyond
// the initial region.
func CheckFig7(sw *PolicySweep) error {
	for pi, p := range sw.P {
		for qi := 1; qi < len(sw.Q); qi++ {
			if sw.Revenue[qi][pi] < sw.Revenue[qi-1][pi]-shapeTol {
				return fmt.Errorf("Fig7: revenue falls in q at p=%g (q=%g: %g -> q=%g: %g)",
					p, sw.Q[qi-1], sw.Revenue[qi-1][pi], sw.Q[qi], sw.Revenue[qi][pi])
			}
			if sw.Welfare[qi][pi] < sw.Welfare[qi-1][pi]-shapeTol {
				return fmt.Errorf("Fig7: welfare falls in q at p=%g (q=%g -> q=%g)", p, sw.Q[qi-1], sw.Q[qi])
			}
		}
	}
	// Welfare decreasing in p for the upper half of the price range.
	for qi := range sw.Q {
		for pi := len(sw.P) / 2; pi < len(sw.P)-1; pi++ {
			if sw.Welfare[qi][pi+1] > sw.Welfare[qi][pi]+shapeTol {
				return fmt.Errorf("Fig7: welfare rises with p at q=%g p=%g", sw.Q[qi], sw.P[pi+1])
			}
		}
	}
	return nil
}

// CheckFig8 verifies the subsidy patterns of Figure 8: (i) subsidies are
// nondecreasing in q pointwise (Theorem 6 / Corollary 1); (ii) for matched
// (α, β), the v=1 CP subsidizes at least as much as its v=0.5 counterpart
// (Theorem 5); (iii) for matched (β, v), the α=5 CP subsidizes at least as
// much as the α=2 one at mid-range prices.
func CheckFig8(sw *PolicySweep) error {
	for qi := 1; qi < len(sw.Q); qi++ {
		for pi := range sw.P {
			for i := range sw.Names {
				if sw.S[qi][pi][i] < sw.S[qi-1][pi][i]-1e-4 {
					return fmt.Errorf("Fig8: subsidy of %s falls in q at p=%g", sw.Names[i], sw.P[pi])
				}
			}
		}
	}
	qi := len(sw.Q) - 1 // most relaxed policy
	for _, ab := range [][2]float64{{2, 2}, {2, 5}, {5, 2}, {5, 5}} {
		lo := FindCP(sw.Sys, fmt.Sprintf("a=%g b=%g v=0.5", ab[0], ab[1]))
		hi := FindCP(sw.Sys, fmt.Sprintf("a=%g b=%g v=1", ab[0], ab[1]))
		if lo < 0 || hi < 0 {
			return fmt.Errorf("Fig8: grid CP not found for (α,β)=%v", ab)
		}
		for pi := range sw.P {
			if sw.P[pi] < 0.5 {
				continue // both may be pinned at q near p=0
			}
			if sw.S[qi][pi][hi] < sw.S[qi][pi][lo]-1e-4 {
				return fmt.Errorf("Fig8: high-v CP subsidizes less than low-v at (α,β)=%v p=%g", ab, sw.P[pi])
			}
		}
	}
	for _, bv := range [][2]float64{{2, 1}, {5, 1}} {
		lo := FindCP(sw.Sys, fmt.Sprintf("a=2 b=%g v=%g", bv[0], bv[1]))
		hi := FindCP(sw.Sys, fmt.Sprintf("a=5 b=%g v=%g", bv[0], bv[1]))
		mid := len(sw.P) / 2
		if sw.S[qi][mid][hi] < sw.S[qi][mid][lo]-1e-4 {
			return fmt.Errorf("Fig8: high-α CP subsidizes less than low-α at (β,v)=%v mid price", bv)
		}
	}
	return nil
}

// CheckFig9 verifies Figure 9: populations are nondecreasing in q at every
// price (cheaper effective prices under more subsidization), and high-α
// populations decay faster in p than their low-α counterparts under the
// baseline.
func CheckFig9(sw *PolicySweep) error {
	for qi := 1; qi < len(sw.Q); qi++ {
		for pi := range sw.P {
			for i := range sw.Names {
				if sw.M[qi][pi][i] < sw.M[qi-1][pi][i]-1e-4 {
					return fmt.Errorf("Fig9: population of %s falls in q at p=%g", sw.Names[i], sw.P[pi])
				}
			}
		}
	}
	// Relative decay comparison under q=0 between α=5 and α=2 (matched β,
	// v): the paper reads the steeper fall of the high-α panels as the
	// population retained at the top of the price range being a much smaller
	// fraction of the initial population.
	first, last := 1, len(sw.P)-1 // skip p=0 where everyone has m=1
	for _, bv := range [][2]float64{{2, 0.5}, {5, 0.5}, {2, 1}, {5, 1}} {
		lo := FindCP(sw.Sys, fmt.Sprintf("a=2 b=%g v=%g", bv[0], bv[1]))
		hi := FindCP(sw.Sys, fmt.Sprintf("a=5 b=%g v=%g", bv[0], bv[1]))
		retLo := sw.M[0][last][lo] / sw.M[0][first][lo]
		retHi := sw.M[0][last][hi] / sw.M[0][first][hi]
		if retHi > retLo+shapeTol {
			return fmt.Errorf("Fig9: α=5 population decays slower (relative) than α=2 at (β,v)=%v", bv)
		}
	}
	return nil
}

// CheckFig10 verifies Figure 10: with matched (α, v), the β=2 CP achieves at
// least the throughput of the β=5 CP; and the paper's highlighted exception —
// CP (α,β,v) = (2,5,1) has *lower* throughput under the most relaxed policy
// than under the baseline at small p (congestion externality), while the
// profitable low-β CPs gain from subsidization at moderate prices.
func CheckFig10(sw *PolicySweep) error {
	qi := len(sw.Q) - 1
	for _, av := range [][2]float64{{2, 0.5}, {5, 0.5}, {2, 1}, {5, 1}} {
		loB := FindCP(sw.Sys, fmt.Sprintf("a=%g b=2 v=%g", av[0], av[1]))
		hiB := FindCP(sw.Sys, fmt.Sprintf("a=%g b=5 v=%g", av[0], av[1]))
		for pi := range sw.P {
			if sw.Theta[qi][pi][loB] < sw.Theta[qi][pi][hiB]-shapeTol {
				return fmt.Errorf("Fig10: β=5 CP beats β=2 at (α,v)=%v p=%g", av, sw.P[pi])
			}
		}
	}
	exc := FindCP(sw.Sys, "a=2 b=5 v=1")
	if exc < 0 {
		return fmt.Errorf("Fig10: exception CP not found")
	}
	smallP := 1 // first positive price point
	if !(sw.Theta[qi][smallP][exc] < sw.Theta[0][smallP][exc]+shapeTol) {
		return fmt.Errorf("Fig10: exception CP (2,5,1) should lose throughput vs baseline at small p")
	}
	gain := FindCP(sw.Sys, "a=5 b=2 v=1")
	mid := len(sw.P) / 2
	if !(sw.Theta[qi][mid][gain] > sw.Theta[0][mid][gain]-shapeTol) {
		return fmt.Errorf("Fig10: profitable low-β CP (5,2,1) should gain throughput vs baseline at mid p")
	}
	return nil
}

// CheckFig11 verifies Figure 11: under relaxed policy the high-α high-v CPs
// gain utility relative to the baseline at mid prices, while the low-α
// high-β CPs lose (the paper's two headline utility patterns).
func CheckFig11(sw *PolicySweep) error {
	qi := len(sw.Q) - 1
	mid := len(sw.P) / 2
	winner := FindCP(sw.Sys, "a=5 b=2 v=1")
	if !(sw.U[qi][mid][winner] > sw.U[0][mid][winner]-shapeTol) {
		return fmt.Errorf("Fig11: high-α high-v CP should gain utility under relaxed policy")
	}
	loser := FindCP(sw.Sys, "a=2 b=5 v=0.5")
	smallP := 1
	if !(sw.U[qi][smallP][loser] < sw.U[0][smallP][loser]+shapeTol) {
		return fmt.Errorf("Fig11: low-α high-β CP should lose utility under relaxed policy at small p")
	}
	return nil
}

// CheckAll runs every figure check on freshly computed data at the given
// resolution (0 → defaults) and returns the first failure.
func CheckAll(pPts int) error {
	f4, err := Fig4(pPts, 0)
	if err != nil {
		return err
	}
	if err := CheckFig4(f4); err != nil {
		return err
	}
	f5, err := Fig5(pPts, 0)
	if err != nil {
		return err
	}
	if err := CheckFig5(f5); err != nil {
		return err
	}
	sw, err := RunPolicySweep(pPts, 0)
	if err != nil {
		return err
	}
	for _, chk := range []func(*PolicySweep) error{CheckFig7, CheckFig8, CheckFig9, CheckFig10, CheckFig11} {
		if err := chk(sw); err != nil {
			return err
		}
	}
	return nil
}

// singlePeaked verifies y rises (weakly) to a unique peak then falls
// (weakly), within tolerance.
func singlePeaked(x, y []float64) error {
	k := peakIdx(y)
	for i := 1; i <= k; i++ {
		if y[i] < y[i-1]-shapeTol {
			return fmt.Errorf("dips before the peak at x=%g", x[i])
		}
	}
	for i := k + 1; i < len(y); i++ {
		if y[i] > y[i-1]+shapeTol {
			return fmt.Errorf("rises after the peak at x=%g", x[i])
		}
	}
	return nil
}

func peakIdx(y []float64) int {
	best, bi := math.Inf(-1), 0
	for i, v := range y {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}
