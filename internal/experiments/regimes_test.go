package experiments

import (
	"strings"
	"testing"

	"neutralnet/internal/game"
)

func TestRegimeMapOnBindingCap(t *testing.T) {
	// q = 0.45 binds the profitable CPs at small prices (see Figure 8);
	// the map must show capped entries and at least one boundary crossing.
	rm, err := RunRegimeMap(0.45, 21)
	if err != nil {
		t.Fatal(err)
	}
	if len(rm.P) != 21 || len(rm.Regimes) != 21 {
		t.Fatalf("map shape: %d prices, %d rows", len(rm.P), len(rm.Regimes))
	}
	capped := 0
	for _, r := range rm.Regimes[0] {
		if r == game.RegimeCapped {
			capped++
		}
	}
	if capped == 0 {
		t.Fatal("no CP capped at the cheapest price under a binding cap")
	}
	if len(rm.Changes) == 0 {
		t.Fatal("no regime changes detected across the price sweep")
	}
	if rm.ChangeTable().Len() != len(rm.Changes) {
		t.Fatal("change table row count mismatch")
	}
	body := rm.Table().String()
	if !strings.Contains(body, "#") || !strings.Contains(body, ".") {
		t.Fatalf("regime glyphs missing from table:\n%s", body)
	}
}

func TestRegimeMapLooseCapAllInteriorOrZero(t *testing.T) {
	// q = 2 never binds on this grid (unconstrained optima < 0.8): the map
	// must contain no capped entries.
	rm, err := RunRegimeMap(2, 9)
	if err != nil {
		t.Fatal(err)
	}
	for pi := range rm.Regimes {
		for i, r := range rm.Regimes[pi] {
			if r == game.RegimeCapped {
				t.Fatalf("CP %s capped at p=%v under a loose cap", rm.Names[i], rm.P[pi])
			}
		}
	}
}
