package experiments

import (
	"fmt"
	"math"

	"neutralnet/internal/game"
	"neutralnet/internal/isp"
	"neutralnet/internal/model"
	"neutralnet/internal/numeric"
	"neutralnet/internal/report"
)

// TheoremCheck is one validated claim: the theorem, the numerical evidence,
// and whether it held.
type TheoremCheck struct {
	Name     string
	Detail   string
	Residual float64 // magnitude of the worst violation or mismatch
	Passed   bool
}

// ValidateTheorems runs a compact numerical validation of every theorem in
// the paper on the eight-CP grid and returns one row per claim. It is the
// programmatic counterpart of EXPERIMENTS.md's theorem table and is executed
// by tests and by `cmd/figures -theorems`.
func ValidateTheorems() ([]TheoremCheck, error) {
	sys := EightCPGrid()
	var out []TheoremCheck
	add := func(name, detail string, residual, tol float64) {
		out = append(out, TheoremCheck{
			Name: name, Detail: detail,
			Residual: residual, Passed: residual <= tol,
		})
	}

	// --- Lemma 1: unique fixed point, increasing gap. ---
	m := sys.PopulationsAt(sys.UniformPrices(0.7))
	phi, err := sys.SolveUtilization(m)
	if err != nil {
		return nil, err
	}
	add("Lemma 1", "gap residual at solved φ", math.Abs(sys.Gap(phi, m)), 1e-8)

	// --- Theorem 1: capacity and user effects vs finite differences. ---
	fdPhiMu := numeric.Derivative(func(mu float64) float64 {
		s2 := *sys
		s2.Mu = mu
		p, _ := s2.SolveUtilization(m)
		return p
	}, sys.Mu, 1e-6)
	add("Theorem 1 (capacity)", "∂φ/∂µ closed form vs numeric",
		math.Abs(sys.DPhiDMu(phi, m)-fdPhiMu), 1e-5)
	fdPhiM0 := numeric.Derivative(func(m0 float64) float64 {
		m2 := append([]float64(nil), m...)
		m2[0] = m0
		p, _ := sys.SolveUtilization(m2)
		return p
	}, m[0], 1e-6)
	add("Theorem 1 (user)", "∂φ/∂m₀ closed form vs numeric",
		math.Abs(sys.DPhiDM(0, phi, m)-fdPhiM0), 1e-5)

	// --- Theorem 2: price effect vs finite differences. ---
	st, err := sys.SolveOneSided(0.7)
	if err != nil {
		return nil, err
	}
	fdPhiP := numeric.Derivative(func(p float64) float64 {
		s, _ := sys.SolveOneSided(p)
		return s.Phi
	}, 0.7, 1e-6)
	add("Theorem 2", "∂φ/∂p closed form vs numeric",
		math.Abs(sys.DPhiDP(0.7, st)-fdPhiP), 1e-5)

	// --- Theorem 3: equilibrium satisfies KKT and the threshold form. ---
	// One workspace threads every equilibrium solve of the validation; the
	// retained equilibria are cloned off it.
	ws := game.NewWorkspace()
	g, err := game.New(sys, 1, 1)
	if err != nil {
		return nil, err
	}
	eqWS, err := g.SolveNashWS(ws, game.Options{Tol: 1e-11})
	if err != nil {
		return nil, err
	}
	eq := eqWS.Clone()
	kkt, err := g.VerifyKKT(eq.S)
	if err != nil {
		return nil, err
	}
	add("Theorem 3 (KKT)", "worst first-order violation at the equilibrium",
		kkt.MaxViolation, 1e-6)
	thr, err := g.VerifyThreshold(eq.S)
	if err != nil {
		return nil, err
	}
	add("Theorem 3 (threshold)", "worst |s − min{τ, q}| residual", thr, 1e-5)

	// --- Theorem 4 (local): interior Jacobian is a P-matrix. ---
	isP, err := g.InteriorJacobianIsPMatrix(eq.S)
	if err != nil {
		return nil, err
	}
	add("Theorem 4 (local)", "−∇ũ P-matrix at equilibrium", boolResidual(isP), 0.5)

	// --- Theorem 5: bump v₄ (a=2 b=2 v=1) and check s₄ rises. ---
	bumped := *sys
	bumped.CPs = append([]model.CP(nil), sys.CPs...)
	i5 := FindCP(sys, "a=2 b=2 v=1")
	bumped.CPs[i5].Value = 1.2
	g5, err := game.New(&bumped, 1, 1)
	if err != nil {
		return nil, err
	}
	eq5, err := g5.SolveNashWS(ws, game.Options{Initial: eq.S})
	if err != nil {
		return nil, err
	}
	add("Theorem 5", "Δs of the profitability-bumped CP (must be ≥ 0)",
		math.Max(0, eq.S[i5]-eq5.S[i5]), 1e-6)

	// --- Theorem 6: sensitivities vs re-solved finite differences. ---
	g6, err := game.New(sys, 0.9, 0.6)
	if err != nil {
		return nil, err
	}
	eq6WS, err := g6.SolveNashWS(ws, game.Options{Tol: 1e-11})
	if err != nil {
		return nil, err
	}
	eq6 := eq6WS.Clone() // retained across the finite-difference re-solves
	sens, err := g6.SensitivityAt(eq6.S)
	if err != nil {
		return nil, err
	}
	dq, dp, err := g6.SensitivityFiniteDiff(eq6.S, 2e-4)
	if err != nil {
		return nil, err
	}
	worst6 := 0.0
	for i := range dq {
		worst6 = math.Max(worst6, math.Abs(sens.DsDq[i]-dq[i]))
		worst6 = math.Max(worst6, math.Abs(sens.DsDp[i]-dp[i]))
	}
	add("Theorem 6", "worst |analytic − FD| over ∂s/∂q, ∂s/∂p", worst6, 2e-2)

	// --- Corollary 1: revenue/φ monotone over the q ladder at p = 1. ---
	worstC1 := 0.0
	prevR, prevPhi := -1.0, -1.0
	for _, q := range QLevels() {
		gq, err := game.New(sys, 1, q)
		if err != nil {
			return nil, err
		}
		eqq, err := gq.SolveNashWS(ws, game.Options{})
		if err != nil {
			return nil, err
		}
		r := gq.Revenue(eqq.State)
		worstC1 = math.Max(worstC1, prevR-r)
		worstC1 = math.Max(worstC1, prevPhi-eqq.State.Phi)
		prevR, prevPhi = r, eqq.State.Phi
	}
	add("Corollary 1", "worst decrease of R or φ along the q ladder", math.Max(0, worstC1), 1e-8)

	// --- Theorem 7: marginal revenue factorization vs numeric dR/dp. ---
	out7, err := isp.Solve(sys, 0.9, 0.6, nil)
	if err != nil {
		return nil, err
	}
	mr, err := isp.MarginalRevenue(sys, 0.9, 0.6, out7.Eq)
	if err != nil {
		return nil, err
	}
	mrNum, err := isp.MarginalRevenueNumeric(sys, 0.9, 0.6, 2e-4)
	if err != nil {
		return nil, err
	}
	add("Theorem 7", "|Υ-form − numeric dR/dp|", math.Abs(mr-mrNum), 2e-2)

	// --- Theorem 8: policy-effect chain vs FD under a fixed price. ---
	pe, err := isp.PolicyEffectAt(sys, isp.FixedPrice{P: 1}, 0.6, 0)
	if err != nil {
		return nil, err
	}
	h := 2e-4
	op, err := isp.Solve(sys, 1, 0.6+h, nil)
	if err != nil {
		return nil, err
	}
	om, err := isp.Solve(sys, 1, 0.6-h, nil)
	if err != nil {
		return nil, err
	}
	fd8 := (op.Eq.State.Phi - om.Eq.State.Phi) / (2 * h)
	add("Theorem 8", "|dφ/dq chain − FD| with price response fixed",
		math.Abs(pe.DPhiDq-fd8), 3e-2*math.Max(0.1, math.Abs(fd8)))

	// --- Corollary 2: decomposition predicts the sign of dW/dq. ---
	// (Evaluated on the 3-CP welfare test market inside the welfare package
	// tests; here we check the premise computes finitely on the grid.)
	add("Corollary 2", "decomposition computable (see welfare tests for sign check)",
		boolResidual(!math.IsNaN(pe.MarginalWelfareDq(sys))), 0.5)

	return out, nil
}

// Table renders the validation as a report table.
func TheoremTable(checks []TheoremCheck) *report.Table {
	t := report.NewTable("claim", "evidence", "residual", "status")
	for _, c := range checks {
		status := "PASS"
		if !c.Passed {
			status = "FAIL"
		}
		t.AddRow(c.Name, c.Detail, fmt.Sprintf("%.2e", c.Residual), status)
	}
	return t
}

func boolResidual(ok bool) float64 {
	if ok {
		return 0
	}
	return 1
}
