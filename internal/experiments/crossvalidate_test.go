package experiments

import (
	"testing"

	"neutralnet/internal/econ"
	"neutralnet/internal/flowsim"
	"neutralnet/internal/game"
	"neutralnet/internal/model"
)

// TestAnalyticEquilibriumGroundsInFlowsim closes the loop between the
// macroscopic game and the flow-level simulator: solve the subsidization
// equilibrium analytically, feed the resulting effective user prices
// t_i = p − s_i into the simulator's valuation-based participation model,
// and check that the operational system reproduces the analytic ordering —
// participation levels track m_i(t_i), and allowing subsidies raises link
// utilization.
func TestAnalyticEquilibriumGroundsInFlowsim(t *testing.T) {
	const (
		p     = 1.0
		q     = 1.0
		users = 4000 // Monte-Carlo resolution of the participation draw
	)
	mk := func(name string, a, b, v float64) model.CP {
		return model.CP{
			Name:       name,
			Demand:     econ.NewExpDemand(a),
			Throughput: econ.NewExpThroughput(b),
			Value:      v,
		}
	}
	sys := &model.System{
		CPs:  []model.CP{mk("video", 5, 2, 1), mk("social", 2, 5, 0.5)},
		Mu:   1,
		Util: econ.LinearUtilization{},
	}
	g, err := game.New(sys, p, q)
	if err != nil {
		t.Fatal(err)
	}
	eq, err := g.SolveNash(game.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !(eq.S[0] > 0.1) {
		t.Fatalf("test premise: video CP should subsidize, got %v", eq.S)
	}

	runSim := func(s []float64) flowsim.Result {
		classes := make([]flowsim.Class, sys.N())
		alphas := []float64{5, 2}
		for i := range classes {
			classes[i] = flowsim.Class{
				Name:         sys.CPs[i].Name,
				Users:        users,
				Alpha:        alphas[i],
				Price:        p - s[i],
				PeakRate:     1,
				MeanFlowSize: 5,
				MeanThink:    20,
			}
		}
		res, err := flowsim.Run(flowsim.Config{
			Capacity: 220, // scaled so the uncongested per-user rate is ~peak
			Classes:  classes,
			Horizon:  200, Warmup: 20,
			Seed: 99,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	base := runSim(make([]float64, sys.N()))
	subs := runSim(eq.S)

	// Participation fractions must track the analytic populations within
	// Monte-Carlo noise (~2/sqrt(users)).
	tolerance := 0.04
	for i := range sys.CPs {
		analytic := sys.CPs[i].Demand.M(p - eq.S[i])
		measured := float64(subs.Classes[i].Participants) / float64(users)
		if diff := measured - analytic; diff > tolerance || diff < -tolerance {
			t.Fatalf("CP %s participation %v vs analytic m=%v", sys.CPs[i].Name, measured, analytic)
		}
	}

	// Corollary 1, operationally: the subsidized market loads the link more.
	if !(subs.Utilization > base.Utilization) {
		t.Fatalf("simulated utilization did not rise under subsidies: %v vs %v",
			base.Utilization, subs.Utilization)
	}
	// And the subsidizing CP carries more traffic than in the baseline.
	if !(subs.Classes[0].Throughput > base.Classes[0].Throughput) {
		t.Fatalf("subsidizing CP's simulated throughput did not rise: %v vs %v",
			base.Classes[0].Throughput, subs.Classes[0].Throughput)
	}
	// ISP usage revenue (price × carried bytes, net of subsidies flowing
	// through users) rises with utilization.
	revenue := func(r flowsim.Result) float64 {
		total := 0.0
		for _, c := range r.Classes {
			total += p * c.BytesCarried // the ISP bills gross usage at p
		}
		return total
	}
	if !(revenue(subs) > revenue(base)) {
		t.Fatalf("simulated ISP revenue did not rise: %v vs %v", revenue(base), revenue(subs))
	}
}
