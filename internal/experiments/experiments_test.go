package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestScenarioCatalogs(t *testing.T) {
	nine := NineCPGrid()
	if nine.N() != 9 {
		t.Fatalf("nine-CP grid has %d CPs", nine.N())
	}
	if err := nine.Validate(); err != nil {
		t.Fatal(err)
	}
	eight := EightCPGrid()
	if eight.N() != 8 {
		t.Fatalf("eight-CP grid has %d CPs", eight.N())
	}
	if err := eight.Validate(); err != nil {
		t.Fatal(err)
	}
	// Panel addressing as in the paper.
	if i := FindCP(eight, "a=2 b=5 v=1"); i < 0 {
		t.Fatal("exception CP missing from the catalog")
	}
	if i := FindCP(eight, "nope"); i != -1 {
		t.Fatalf("FindCP on unknown name: %d", i)
	}
}

func TestGrid(t *testing.T) {
	g := Grid(0, 2, 5)
	want := []float64{0, 0.5, 1, 1.5, 2}
	for i := range want {
		if math.Abs(g[i]-want[i]) > 1e-12 {
			t.Fatalf("grid %v", g)
		}
	}
	if g[len(g)-1] != 2 {
		t.Fatal("grid must include the right endpoint exactly")
	}
	if got := Grid(1, 2, 1); len(got) != 1 || got[0] != 1 {
		t.Fatalf("degenerate grid: %v", got)
	}
}

func TestQLevelsMatchPaper(t *testing.T) {
	q := QLevels()
	want := []float64{0, 0.5, 1, 1.5, 2}
	if len(q) != len(want) {
		t.Fatalf("levels %v", q)
	}
	for i := range want {
		if q[i] != want[i] {
			t.Fatalf("levels %v", q)
		}
	}
}

// TestReproduceAllFigures is the headline integration test: every figure of
// the paper regenerates and passes its qualitative shape check at reduced
// resolution (the full-resolution run happens in cmd/figures and the
// benchmarks).
func TestReproduceAllFigures(t *testing.T) {
	if err := CheckAll(17); err != nil {
		t.Fatal(err)
	}
}

func TestFig4Renderers(t *testing.T) {
	r, err := Fig4(9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Table().Len() != 9 {
		t.Fatalf("table rows: %d", r.Table().Len())
	}
	if !strings.Contains(r.Charts(), "Fig 4") {
		t.Fatal("chart title missing")
	}
	csv := r.Table().CSV()
	if !strings.HasPrefix(csv, "p,theta,revenue") {
		t.Fatalf("CSV header: %q", strings.SplitN(csv, "\n", 2)[0])
	}
}

func TestFig5Renderers(t *testing.T) {
	r, err := Fig5(9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Theta) != 9 || len(r.Names) != 9 {
		t.Fatalf("shape: %d CPs", len(r.Theta))
	}
	if r.Table().Len() != 9 {
		t.Fatalf("table rows: %d", r.Table().Len())
	}
	if !strings.Contains(r.Charts(), "a=1 b=1") {
		t.Fatal("panel names missing from charts")
	}
}

func TestPolicySweepSeriesAccessors(t *testing.T) {
	sw, err := RunPolicySweep(7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Q) != 5 || len(sw.P) != 7 {
		t.Fatalf("sweep shape: %d q, %d p", len(sw.Q), len(sw.P))
	}
	for qi := range sw.Q {
		for i := range sw.Names {
			if got := sw.SubsidySeries(qi, i); len(got) != 7 {
				t.Fatalf("subsidy series length %d", len(got))
			}
			if got := sw.PopulationSeries(qi, i); len(got) != 7 {
				t.Fatalf("population series length %d", len(got))
			}
			if got := sw.ThroughputSeries(qi, i); len(got) != 7 {
				t.Fatalf("throughput series length %d", len(got))
			}
			if got := sw.UtilitySeries(qi, i); len(got) != 7 {
				t.Fatalf("utility series length %d", len(got))
			}
		}
	}
	// q = 0 level must be the no-subsidy baseline.
	for pi := range sw.P {
		for i := range sw.Names {
			if sw.S[0][pi][i] != 0 {
				t.Fatalf("baseline level has nonzero subsidy s[%d][%d]", pi, i)
			}
		}
	}
	for _, tb := range []interface{ Len() int }{
		sw.Fig7Table(), sw.Fig8Table(), sw.Fig9Table(), sw.Fig10Table(), sw.Fig11Table(),
	} {
		if tb.Len() != 7 {
			t.Fatalf("figure table rows: %d", tb.Len())
		}
	}
	if !strings.Contains(sw.Fig7Charts(), "q=2") {
		t.Fatal("Fig7 charts missing policy legend")
	}
	for _, which := range []string{"s", "m", "theta", "U"} {
		if sw.PanelCharts(which) == "" {
			t.Fatalf("PanelCharts(%q) empty", which)
		}
	}
	if sw.PanelCharts("bogus") != "" {
		t.Fatal("unknown panel should render empty")
	}
}

func TestRunPolicySweepOnCustomLevels(t *testing.T) {
	sw, err := RunPolicySweepOn(EightCPGrid(), []float64{0, 1}, 5, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Q) != 2 || sw.P[len(sw.P)-1] != 1 {
		t.Fatalf("custom sweep shape: %+v", sw.Q)
	}
}

func TestSinglePeakedHelper(t *testing.T) {
	if err := singlePeaked([]float64{0, 1, 2, 3}, []float64{1, 2, 1.5, 1}); err != nil {
		t.Fatalf("valid single peak rejected: %v", err)
	}
	if err := singlePeaked([]float64{0, 1, 2, 3}, []float64{1, 0.5, 2, 1}); err == nil {
		t.Fatal("dip before peak accepted")
	}
	if err := singlePeaked([]float64{0, 1, 2, 3}, []float64{1, 2, 1, 1.5}); err == nil {
		t.Fatal("rise after peak accepted")
	}
}

func TestValidateTheoremsAllPass(t *testing.T) {
	checks, err := ValidateTheorems()
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) < 12 {
		t.Fatalf("expected the full theorem battery, got %d checks", len(checks))
	}
	for _, c := range checks {
		if !c.Passed {
			t.Errorf("%s failed: %s (residual %.3e)", c.Name, c.Detail, c.Residual)
		}
	}
	if TheoremTable(checks).Len() != len(checks) {
		t.Fatal("theorem table row count mismatch")
	}
}

func TestConsumerSurplusInSweep(t *testing.T) {
	sw, err := RunPolicySweep(9, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Surplus rises with the policy cap (cheaper effective prices) and
	// falls with the usage price at the baseline.
	for pi := range sw.P {
		for qi := 1; qi < len(sw.Q); qi++ {
			if sw.Surplus[qi][pi] < sw.Surplus[qi-1][pi]-1e-6 {
				t.Fatalf("consumer surplus falls in q at p=%v", sw.P[pi])
			}
		}
	}
	for pi := 1; pi < len(sw.P); pi++ {
		if sw.Surplus[0][pi] > sw.Surplus[0][pi-1]+1e-6 {
			t.Fatalf("baseline consumer surplus rises with price at p=%v", sw.P[pi])
		}
	}
}
