// Package experiments contains the per-figure reproduction harness: the
// paper's two CP catalogs, generators that recompute the data behind every
// figure of the evaluation (Figures 4, 5, 7, 8, 9, 10, 11 — the paper has no
// numbered tables), report/chart renderers for them, and the qualitative
// shape checks EXPERIMENTS.md records.
package experiments

import (
	"fmt"

	"neutralnet/internal/econ"
	"neutralnet/internal/model"
	"neutralnet/internal/sweep"
)

// NineCPGrid is the §3.2 catalog behind Figures 4–5: nine CP types with
// (α_i, β_i) drawn from {1,3,5}², exponential demand m_i(t) = e^{−α_i t},
// exponential throughput λ_i(φ) = e^{−β_i φ}, capacity µ = 1 and the
// utilization metric Φ(θ, µ) = θ/µ. The CPs carry unit profitability so the
// same catalog can be reused by welfare calculations.
func NineCPGrid() *model.System {
	var cps []model.CP
	for _, alpha := range []float64{1, 3, 5} {
		for _, beta := range []float64{1, 3, 5} {
			cps = append(cps, model.CP{
				Name:       fmt.Sprintf("a=%g b=%g", alpha, beta),
				Demand:     econ.NewExpDemand(alpha),
				Throughput: econ.NewExpThroughput(beta),
				Value:      1,
			})
		}
	}
	return &model.System{CPs: cps, Mu: 1, Util: econ.LinearUtilization{}}
}

// EightCPGrid is the §5.2 catalog behind Figures 7–11: eight CP types with
// (α_i, β_i, v_i) from {2,5}² × {0.5, 1}, same exponential forms, µ = 1.
// The ordering is v-major then α then β so panels can be addressed as in the
// paper (upper row v = 0.5, lower row v = 1; left α = 2, right α = 5).
func EightCPGrid() *model.System {
	var cps []model.CP
	for _, v := range []float64{0.5, 1} {
		for _, alpha := range []float64{2, 5} {
			for _, beta := range []float64{2, 5} {
				cps = append(cps, model.CP{
					Name:       fmt.Sprintf("a=%g b=%g v=%g", alpha, beta, v),
					Demand:     econ.NewExpDemand(alpha),
					Throughput: econ.NewExpThroughput(beta),
					Value:      v,
				})
			}
		}
	}
	return &model.System{CPs: cps, Mu: 1, Util: econ.LinearUtilization{}}
}

// FindCP returns the index of the CP with the given parameters in the
// EightCPGrid ordering, or −1.
func FindCP(sys *model.System, name string) int {
	for i, cp := range sys.CPs {
		if cp.Name == name {
			return i
		}
	}
	return -1
}

// Grid returns n evenly spaced points on [lo, hi] inclusive. It delegates
// to the sweep core's Uniform so the figure harness and the Engine always
// draw from the same grid construction.
func Grid(lo, hi float64, n int) []float64 { return sweep.Uniform(lo, hi, n) }

// QLevels is the paper's five policy levels for Figures 7–11.
func QLevels() []float64 { return []float64{0, 0.5, 1.0, 1.5, 2.0} }
