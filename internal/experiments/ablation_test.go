package experiments

import (
	"fmt"
	"testing"

	"neutralnet/internal/econ"
	"neutralnet/internal/model"
)

// TestShapeSurvivesAlternativeFamilies re-runs the core monotonicity checks
// with non-exponential curve families — rational throughput decay and a
// saturating utilization map — demonstrating that the paper's qualitative
// conclusions do not hinge on the styled e^{−βφ}/θ/µ forms (the ablation
// DESIGN.md promises).
func TestShapeSurvivesAlternativeFamilies(t *testing.T) {
	cases := []struct {
		name string
		mk   func() *model.System
	}{
		{
			name: "rational-throughput",
			mk: func() *model.System {
				var cps []model.CP
				for _, v := range []float64{0.5, 1} {
					for _, alpha := range []float64{2, 5} {
						for _, beta := range []float64{2, 5} {
							cps = append(cps, model.CP{
								Name:       fmt.Sprintf("a=%g b=%g v=%g", alpha, beta, v),
								Demand:     econ.NewExpDemand(alpha),
								Throughput: econ.RationalThroughput{Beta: beta, Peak: 1},
								Value:      v,
							})
						}
					}
				}
				return &model.System{CPs: cps, Mu: 1, Util: econ.LinearUtilization{}}
			},
		},
		{
			name: "saturating-utilization",
			mk: func() *model.System {
				sys := EightCPGrid()
				sys.Util = econ.SaturatingUtilization{}
				return sys
			},
		},
		{
			name: "power-utilization",
			mk: func() *model.System {
				sys := EightCPGrid()
				sys.Util = econ.PowerUtilization{Gamma: 1.5}
				return sys
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sw, err := RunPolicySweepOn(tc.mk(), []float64{0, 0.5, 1, 1.5, 2}, 11, 2, 0)
			if err != nil {
				t.Fatal(err)
			}
			// Corollary 1 shapes: revenue and welfare monotone in q at each
			// price; populations too (CheckFig9's first half).
			for pi, p := range sw.P {
				for qi := 1; qi < len(sw.Q); qi++ {
					if sw.Revenue[qi][pi] < sw.Revenue[qi-1][pi]-1e-6 {
						t.Fatalf("revenue falls in q at p=%g", p)
					}
					if sw.Welfare[qi][pi] < sw.Welfare[qi-1][pi]-1e-6 {
						t.Fatalf("welfare falls in q at p=%g", p)
					}
					for i := range sw.Names {
						if sw.M[qi][pi][i] < sw.M[qi-1][pi][i]-1e-4 {
							t.Fatalf("population of %s falls in q at p=%g", sw.Names[i], p)
						}
					}
				}
			}
			// Theorem 5 direction across the grid: matched (α,β), higher v
			// subsidizes at least as much at the top policy level.
			qi := len(sw.Q) - 1
			mid := len(sw.P) / 2
			for _, ab := range [][2]float64{{2, 2}, {2, 5}, {5, 2}, {5, 5}} {
				lo := FindCP(sw.Sys, fmt.Sprintf("a=%g b=%g v=0.5", ab[0], ab[1]))
				hi := FindCP(sw.Sys, fmt.Sprintf("a=%g b=%g v=1", ab[0], ab[1]))
				if lo < 0 || hi < 0 {
					t.Fatalf("grid CP missing for %v", ab)
				}
				if sw.S[qi][mid][hi] < sw.S[qi][mid][lo]-1e-4 {
					t.Fatalf("high-v CP subsidizes less at (α,β)=%v", ab)
				}
			}
		})
	}
}
