package experiments

import (
	"fmt"

	"neutralnet/internal/model"
	"neutralnet/internal/report"
)

// Fig4Result carries the data of Figure 4: aggregate throughput θ(p) (left
// panel) and ISP revenue R(p) = p·θ(p) (right panel) under one-sided
// pricing on the nine-CP grid.
type Fig4Result struct {
	P       []float64
	Theta   []float64
	Revenue []float64
}

// Fig4 recomputes Figure 4 on pts price points over [0, pMax]; pass 0,0 for
// the defaults (61 points on [0, 3]).
func Fig4(pts int, pMax float64) (Fig4Result, error) {
	if pts < 2 {
		pts = 61
	}
	if pMax <= 0 {
		pMax = 3
	}
	sys := NineCPGrid()
	res := Fig4Result{P: Grid(0, pMax, pts)}
	res.Theta = make([]float64, pts)
	res.Revenue = make([]float64, pts)
	for i, p := range res.P {
		st, err := sys.SolveOneSided(p)
		if err != nil {
			return Fig4Result{}, fmt.Errorf("experiments: Fig4 at p=%g: %w", p, err)
		}
		res.Theta[i] = st.TotalThroughput()
		res.Revenue[i] = model.Revenue(p, st)
	}
	return res, nil
}

// Table renders the Figure 4 rows (p, θ, R).
func (r Fig4Result) Table() *report.Table {
	t := report.NewTable("p", "theta", "revenue")
	for i := range r.P {
		t.AddRow(r.P[i], r.Theta[i], r.Revenue[i])
	}
	return t
}

// Charts renders the two panels of Figure 4 as ASCII charts.
func (r Fig4Result) Charts() string {
	left := report.Chart("Fig 4 (left): aggregate throughput vs price", 64, 14,
		report.Series{Name: "theta", X: r.P, Y: r.Theta})
	right := report.Chart("Fig 4 (right): ISP revenue vs price", 64, 14,
		report.Series{Name: "R", X: r.P, Y: r.Revenue})
	return left + "\n" + right
}

// Fig5Result carries the data of Figure 5: per-CP throughput θ_i(p) for the
// nine CP types (3×3 panels in the paper).
type Fig5Result struct {
	P     []float64
	Names []string
	// Theta is indexed [cp][price].
	Theta [][]float64
}

// Fig5 recomputes Figure 5; pass 0,0 for the defaults (61 points on [0,3]).
func Fig5(pts int, pMax float64) (Fig5Result, error) {
	if pts < 2 {
		pts = 61
	}
	if pMax <= 0 {
		pMax = 3
	}
	sys := NineCPGrid()
	res := Fig5Result{P: Grid(0, pMax, pts)}
	res.Names = make([]string, sys.N())
	res.Theta = make([][]float64, sys.N())
	for i, cp := range sys.CPs {
		res.Names[i] = cp.Name
		res.Theta[i] = make([]float64, pts)
	}
	for j, p := range res.P {
		st, err := sys.SolveOneSided(p)
		if err != nil {
			return Fig5Result{}, fmt.Errorf("experiments: Fig5 at p=%g: %w", p, err)
		}
		for i := range sys.CPs {
			res.Theta[i][j] = st.Theta[i]
		}
	}
	return res, nil
}

// Table renders the Figure 5 rows (p, θ_1, …, θ_9).
func (r Fig5Result) Table() *report.Table {
	header := append([]string{"p"}, r.Names...)
	t := report.NewTable(header...)
	for j := range r.P {
		cells := make([]interface{}, 0, 1+len(r.Names))
		cells = append(cells, r.P[j])
		for i := range r.Names {
			cells = append(cells, r.Theta[i][j])
		}
		t.AddRow(cells...)
	}
	return t
}

// Charts renders each CP panel as a compact sparkline block.
func (r Fig5Result) Charts() string {
	out := "Fig 5: per-CP throughput vs price (sparklines, p ascending)\n"
	for i, name := range r.Names {
		out += fmt.Sprintf("  %-10s %s\n", name, report.Sparkline(r.Theta[i]))
	}
	return out
}
