package experiments

import (
	"fmt"

	"neutralnet/internal/game"
	"neutralnet/internal/model"
	"neutralnet/internal/report"
)

// RegimeMap traces the equilibrium path over a price grid at a fixed policy
// cap and tabulates each CP's Theorem 6 regime (N⁻ / interior / N⁺) at
// every price, plus the detected boundary crossings. It is the analytical
// companion to Figure 8: where the paper's panels show subsidies pinned at
// q or at 0, the map shows exactly which prices flip each CP's regime.
type RegimeMap struct {
	Q       float64
	P       []float64
	Names   []string
	Regimes [][]game.Regime // [pIdx][cp]
	Changes []game.RegimeChange
}

// RunRegimeMap computes the map on the paper's eight-CP grid. pPts ≤ 0
// selects 41; the price grid starts slightly above zero to avoid the p = 0
// degenerate corner.
func RunRegimeMap(q float64, pPts int) (*RegimeMap, error) {
	return RunRegimeMapOn(EightCPGrid(), q, pPts)
}

// RunRegimeMapOn computes the map on a caller-supplied system.
func RunRegimeMapOn(sys *model.System, q float64, pPts int) (*RegimeMap, error) {
	if pPts <= 1 {
		pPts = 41
	}
	grid := Grid(0.05, 2, pPts)
	path, err := game.Trace(func(p float64) (*game.Game, error) {
		return game.New(sys, p, q)
	}, grid)
	if err != nil {
		return nil, fmt.Errorf("experiments: regime map at q=%g: %w", q, err)
	}
	rm := &RegimeMap{Q: q, P: grid, Changes: path.Changes}
	for _, cp := range sys.CPs {
		rm.Names = append(rm.Names, cp.Name)
	}
	for _, pt := range path.Points {
		rm.Regimes = append(rm.Regimes, pt.Regimes)
	}
	return rm, nil
}

// Table renders one row per price with a compact regime glyph per CP:
// '.' for N⁻, 'o' for interior, '#' for N⁺ (capped).
func (rm *RegimeMap) Table() *report.Table {
	header := append([]string{"p"}, rm.Names...)
	t := report.NewTable(header...)
	for pi, p := range rm.P {
		cells := make([]interface{}, 0, 1+len(rm.Names))
		cells = append(cells, p)
		for _, r := range rm.Regimes[pi] {
			cells = append(cells, regimeGlyph(r))
		}
		t.AddRow(cells...)
	}
	return t
}

// ChangeTable lists the detected regime boundaries.
func (rm *RegimeMap) ChangeTable() *report.Table {
	t := report.NewTable("CP", "between p", "from", "to")
	for _, c := range rm.Changes {
		t.AddRow(rm.Names[c.CP], fmt.Sprintf("(%.3g, %.3g)", c.Between[0], c.Between[1]),
			c.From.String(), c.To.String())
	}
	return t
}

func regimeGlyph(r game.Regime) string {
	switch r {
	case game.RegimeZero:
		return "."
	case game.RegimeCapped:
		return "#"
	default:
		return "o"
	}
}
