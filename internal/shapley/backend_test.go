package shapley

import (
	"math"
	"testing"

	"neutralnet/internal/econ"
	"neutralnet/internal/model"
)

// legacyCompute is the pre-migration coalition enumeration, frozen for
// equivalence testing: one fresh population slice and one one-shot Solve per
// coalition mask.
func legacyCoalitionValues(sys *model.System, p float64) ([]float64, error) {
	n := sys.N()
	value := make([]float64, 1<<uint(n))
	for mask := 1; mask < 1<<uint(n); mask++ {
		pops := make([]float64, n)
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				pops[i] = sys.CPs[i].Demand.M(p)
			}
		}
		st, err := sys.Solve(pops)
		if err != nil {
			return nil, err
		}
		w := 0.0
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				w += sys.CPs[i].Value * st.Theta[i]
			}
		}
		value[mask] = w
	}
	return value, nil
}

// legacyShapley computes the Shapley values off the legacy coalition cache
// with the same subset formulation as Compute.
func legacyShapley(sys *model.System, p float64) (Values, error) {
	n := sys.N()
	value, err := legacyCoalitionValues(sys, p)
	if err != nil {
		return Values{}, err
	}
	P := n + 1
	factorial := make([]float64, P+1)
	factorial[0] = 1
	for k := 1; k <= P; k++ {
		factorial[k] = factorial[k-1] * float64(k)
	}
	weight := func(sz int) float64 { return factorial[sz] * factorial[P-sz-1] / factorial[P] }
	out := Values{CP: make([]float64, n), Grand: value[(1<<uint(n))-1]}
	full := 1 << uint(P)
	for s := 0; s < full; s++ {
		sz := popcount(s)
		if sz == P {
			continue
		}
		cpMask := s & ((1 << uint(n)) - 1)
		hasISP := s&(1<<uint(n)) != 0
		vS := 0.0
		if hasISP {
			vS = value[cpMask]
		}
		w := weight(sz)
		for j := 0; j < n; j++ {
			if s&(1<<uint(j)) != 0 {
				continue
			}
			vSj := 0.0
			if hasISP {
				vSj = value[cpMask|(1<<uint(j))]
			}
			out.CP[j] += w * (vSj - vS)
		}
		if !hasISP {
			out.ISP += w * (value[cpMask] - vS)
		}
	}
	return out, nil
}

func shapleySystem(mu float64) *model.System {
	mk := func(a, b, v float64) model.CP {
		return model.CP{
			Demand:     econ.NewExpDemand(a),
			Throughput: econ.NewExpThroughput(b),
			Value:      v,
		}
	}
	return &model.System{
		CPs:  []model.CP{mk(5, 2, 1), mk(2, 5, 0.5), mk(4, 3, 0.2), mk(3, 4, 0.8)},
		Mu:   mu,
		Util: econ.LinearUtilization{},
	}
}

// TestComputeMatchesLegacy pins the workspace coalition enumeration to the
// frozen legacy path to ≤ 1e-12 across a seeded (p, µ) grid (the per-mask
// states are bit-identical, so the settlement is too).
func TestComputeMatchesLegacy(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    float64
		mu   float64
	}{
		{"base", 0.8, 1},
		{"high-price", 1.5, 1},
		{"scarce", 0.8, 0.4},
		{"abundant", 0.8, 3},
	} {
		sys := shapleySystem(tc.mu)
		want, err := legacyShapley(sys, tc.p)
		if err != nil {
			t.Fatalf("%s: legacy: %v", tc.name, err)
		}
		got, err := Compute(sys, tc.p, 0)
		if err != nil {
			t.Fatalf("%s: workspace: %v", tc.name, err)
		}
		if d := math.Abs(got.ISP - want.ISP); d > 1e-12 {
			t.Fatalf("%s: ISP value differs by %g", tc.name, d)
		}
		if d := math.Abs(got.Grand - want.Grand); d > 1e-12 {
			t.Fatalf("%s: grand value differs by %g", tc.name, d)
		}
		for i := range want.CP {
			if d := math.Abs(got.CP[i] - want.CP[i]); d > 1e-12 {
				t.Fatalf("%s: CP %d value differs by %g", tc.name, i, d)
			}
		}
	}
}
