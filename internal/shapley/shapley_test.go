package shapley

import (
	"math"
	"testing"

	"neutralnet/internal/econ"
	"neutralnet/internal/model"
)

func sysOf(params ...[3]float64) *model.System {
	var cps []model.CP
	for _, p := range params {
		cps = append(cps, model.CP{
			Demand:     econ.NewExpDemand(p[0]),
			Throughput: econ.NewExpThroughput(p[1]),
			Value:      p[2],
		})
	}
	return &model.System{CPs: cps, Mu: 1, Util: econ.LinearUtilization{}}
}

func TestEfficiencyAxiom(t *testing.T) {
	sys := sysOf([3]float64{5, 2, 1}, [3]float64{2, 5, 0.5}, [3]float64{3, 3, 0.8})
	v, err := Compute(sys, 0.8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res := v.Efficiency(); res > 1e-9 {
		t.Fatalf("Shapley values do not split the grand value: residual %v", res)
	}
	if v.Grand <= 0 {
		t.Fatalf("grand value %v", v.Grand)
	}
}

func TestSymmetryAxiom(t *testing.T) {
	// Two identical CPs must receive identical values.
	sys := sysOf([3]float64{4, 3, 0.7}, [3]float64{4, 3, 0.7}, [3]float64{2, 5, 0.3})
	v, err := Compute(sys, 0.8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v.CP[0]-v.CP[1]) > 1e-9 {
		t.Fatalf("identical CPs got %v and %v", v.CP[0], v.CP[1])
	}
}

func TestISPIsEssential(t *testing.T) {
	// Without the ISP no coalition produces value, so the ISP's Shapley
	// value must be large and positive — the settlement channel toward
	// access that §2.4 is after.
	sys := sysOf([3]float64{5, 2, 1}, [3]float64{2, 5, 0.5})
	v, err := Compute(sys, 0.8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.ISP <= 0 {
		t.Fatalf("ISP value %v, must be positive", v.ISP)
	}
	// The essential player earns at least any single CP.
	for i, x := range v.CP {
		if v.ISP < x-1e-12 {
			t.Fatalf("ISP value %v below CP %d's %v", v.ISP, i, x)
		}
	}
}

func TestCongestiveCPCanEarnNegativeValue(t *testing.T) {
	// A zero-value CP that still congests the link contributes only harm:
	// its Shapley value must be negative — the externality made explicit.
	sys := sysOf(
		[3]float64{1, 1, 1},   // valuable workhorse
		[3]float64{0.5, 1, 0}, // worthless but traffic-heavy
	)
	v, err := Compute(sys, 0.3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v.CP[1] >= 0 {
		t.Fatalf("congestive zero-value CP earned %v, expected negative", v.CP[1])
	}
	if v.CP[0] <= 0 {
		t.Fatalf("valuable CP earned %v", v.CP[0])
	}
}

func TestDummyRemovalConsistency(t *testing.T) {
	// Adding a CP with (numerically) no demand must not change the others'
	// values: it is a null player.
	base := sysOf([3]float64{5, 2, 1}, [3]float64{2, 5, 0.5})
	vBase, err := Compute(base, 0.8, 0)
	if err != nil {
		t.Fatal(err)
	}
	withDummy := sysOf([3]float64{5, 2, 1}, [3]float64{2, 5, 0.5}, [3]float64{60, 1, 0.5})
	vDummy, err := Compute(withDummy, 0.8, 0)
	if err != nil {
		t.Fatal(err)
	}
	// α=60 at p=0.8 gives m ≈ e^{−48} ≈ 0: a null player.
	if math.Abs(vDummy.CP[2]) > 1e-6 {
		t.Fatalf("null player earned %v", vDummy.CP[2])
	}
	for i := 0; i < 2; i++ {
		if math.Abs(vDummy.CP[i]-vBase.CP[i]) > 1e-6 {
			t.Fatalf("null player shifted CP %d's value: %v vs %v", i, vDummy.CP[i], vBase.CP[i])
		}
	}
}

func TestGuards(t *testing.T) {
	if _, err := Compute(sysOf([3]float64{1, 1, 1}), -1, 0); err == nil {
		t.Fatal("negative price must be rejected")
	}
	big := make([][3]float64, 5)
	for i := range big {
		big[i] = [3]float64{1, 1, 1}
	}
	if _, err := Compute(sysOf(big...), 1, 3); err == nil {
		t.Fatal("enumeration guard must trip")
	}
}
