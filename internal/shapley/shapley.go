// Package shapley implements the profit-sharing settlement the paper's
// related work (§2.4, Ma et al., "Internet Economics: The use of Shapley
// value for ISP settlement") advocates as the multi-lateral alternative to
// both termination fees and subsidization. It computes the exact Shapley
// value of the cooperative game whose players are the access ISP and the
// CPs, and whose coalition value is the welfare the coalition can generate
// on its own:
//
//	v(S) = 0                                  if ISP ∉ S (no network, no value),
//	v(S) = Σ_{i∈S∩CPs} v_i·θ_i(S)             otherwise,
//
// where θ(S) solves the utilization fixed point with only the coalition's
// CPs attached (at a reference usage price). Because removing congestive
// CPs *helps* the others, low-value high-β CPs can earn negative Shapley
// value — the quantitative version of the paper's negative-externality
// discussion.
//
// Exact enumeration over all 2^{n+1} coalitions is used; the paper's
// catalogs have n ≤ 9 CPs, so this is instantaneous.
package shapley

import (
	"errors"
	"fmt"
	"math"

	"neutralnet/internal/model"
)

// Values carries the computed settlement.
type Values struct {
	ISP float64   // the access ISP's Shapley value
	CP  []float64 // per-CP Shapley values
	// Grand is v(N ∪ {ISP}), the full-market welfare the values split.
	Grand float64
}

// Compute returns the exact Shapley values of the (ISP + CPs) welfare game
// at reference usage price p. maxCPs guards the exponential enumeration
// (0 → 16).
func Compute(sys *model.System, p float64, maxCPs int) (Values, error) {
	if err := sys.Validate(); err != nil {
		return Values{}, err
	}
	if p < 0 {
		return Values{}, fmt.Errorf("shapley: negative price %g", p)
	}
	if maxCPs <= 0 {
		maxCPs = 16
	}
	n := sys.N()
	if n > maxCPs {
		return Values{}, fmt.Errorf("shapley: %d CPs exceeds the enumeration guard %d", n, maxCPs)
	}

	// Coalition welfare cache over CP subsets (ISP always present for
	// nonzero value). All 2^n − 1 coalition states solve on one reusable
	// physical workspace: the populations m_i(p) are coalition-independent,
	// so each mask only toggles components in place before the in-place
	// utilization solve (bit-identical to the historical per-mask Solve).
	ws := model.NewWorkspace()
	ws.Bind(sys)
	mAll := make([]float64, n)
	for i, cp := range sys.CPs {
		mAll[i] = cp.Demand.M(p)
	}
	value := make([]float64, 1<<uint(n))
	for mask := 1; mask < 1<<uint(n); mask++ {
		m := ws.M()
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				m[i] = mAll[i]
			} else {
				m[i] = 0
			}
		}
		st, err := sys.SolveInto(ws)
		if err != nil {
			return Values{}, err
		}
		w := 0.0
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				w += sys.CPs[i].Value * st.Theta[i]
			}
		}
		value[mask] = w
	}

	// Players: index 0..n-1 are CPs, index n is the ISP. Iterate over all
	// orderings implicitly via the subset formulation:
	// φ_j = Σ_{S ∌ j} |S|!(P−|S|−1)!/P! · (v(S∪{j}) − v(S)), P = n+1.
	P := n + 1
	factorial := make([]float64, P+1)
	factorial[0] = 1
	for k := 1; k <= P; k++ {
		factorial[k] = factorial[k-1] * float64(k)
	}
	weight := func(sz int) float64 {
		return factorial[sz] * factorial[P-sz-1] / factorial[P]
	}
	coalitionValue := func(cpMask int, hasISP bool) float64 {
		if !hasISP {
			return 0
		}
		return value[cpMask]
	}

	out := Values{CP: make([]float64, n), Grand: value[(1<<uint(n))-1]}
	// Enumerate subsets S of all players not containing player j.
	full := 1 << uint(P)
	for s := 0; s < full; s++ {
		sz := popcount(s)
		if sz == P {
			continue // no absent player to credit
		}
		cpMask := s & ((1 << uint(n)) - 1)
		hasISP := s&(1<<uint(n)) != 0
		vS := coalitionValue(cpMask, hasISP)
		w := weight(sz)
		// Marginal contribution of each absent player.
		for j := 0; j < n; j++ {
			if s&(1<<uint(j)) != 0 {
				continue
			}
			vSj := coalitionValue(cpMask|(1<<uint(j)), hasISP)
			out.CP[j] += w * (vSj - vS)
		}
		if !hasISP {
			vSj := coalitionValue(cpMask, true)
			out.ISP += w * (vSj - vS)
		}
	}
	return out, nil
}

// Efficiency verifies Σ φ = v(grand coalition) to within tol; it returns
// the residual.
func (v Values) Efficiency() float64 {
	sum := v.ISP
	for _, x := range v.CP {
		sum += x
	}
	return math.Abs(sum - v.Grand)
}

// ErrTooMany is reserved for callers that want to pre-check the guard.
var ErrTooMany = errors.New("shapley: too many CPs for exact enumeration")

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}
