package neutralnet_test

import (
	"fmt"
	"testing"

	"neutralnet"
)

// BenchmarkDuopolySweepPrices measures a 20×20 (p₁, p₂) duopoly price
// surface through the public session, per worker count. Sweeps never read
// the session cache, so repeat sweeps re-solve every point regardless;
// each iteration still opens a fresh session so the timed work (including
// the post-sweep cache fold) is identical every iteration and the cache
// does not keep churning the same resident keys.
// BenchmarkDuopolySweepPricesStream measures the streaming variant of the
// same 20×20 surface: identical solve work, but outcomes are emitted
// segment by segment and reduced online instead of filling the matrix.
func BenchmarkDuopolySweepPricesStream(b *testing.B) {
	sys := neutralnet.NewSystem(1,
		neutralnet.NewCP("video", 4, 2, 1.0),
		neutralnet.NewCP("social", 2, 4, 0.5),
	)
	grid := neutralnet.UniformGrid(0.6, 1.4, 20)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("%dw", workers), func(b *testing.B) {
			b.ReportAllocs()
			eng, err := neutralnet.NewEngine(sys, neutralnet.WithWorkers(workers))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := eng.Duopoly([2]float64{0.5, 0.5}, 3, 1)
				if err != nil {
					b.Fatal(err)
				}
				sum, err := s.SweepPricesStream(grid, grid, nil)
				if err != nil {
					b.Fatal(err)
				}
				if sum.Points != len(grid)*len(grid) {
					b.Fatalf("points: %d", sum.Points)
				}
			}
		})
	}
}

// BenchmarkDuopolySweepPricesAdaptive measures the coarse-to-fine argmax
// search over the 20×20 plane; the speedup over BenchmarkDuopolySweepPrices
// is the fraction of the plane the refinement never solves.
func BenchmarkDuopolySweepPricesAdaptive(b *testing.B) {
	sys := neutralnet.NewSystem(1,
		neutralnet.NewCP("video", 4, 2, 1.0),
		neutralnet.NewCP("social", 2, 4, 0.5),
	)
	grid := neutralnet.UniformGrid(0.6, 1.4, 20)
	b.ReportAllocs()
	eng, err := neutralnet.NewEngine(sys)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := eng.Duopoly([2]float64{0.5, 0.5}, 3, 1)
		if err != nil {
			b.Fatal(err)
		}
		res, err := s.SweepPricesAdaptive(grid, grid)
		if err != nil {
			b.Fatal(err)
		}
		if res.BestRank < 0 || res.Solved*10 > res.Dense*4 {
			b.Fatalf("solved %d/%d, best rank %d", res.Solved, res.Dense, res.BestRank)
		}
	}
}

func BenchmarkDuopolySweepPrices(b *testing.B) {
	sys := neutralnet.NewSystem(1,
		neutralnet.NewCP("video", 4, 2, 1.0),
		neutralnet.NewCP("social", 2, 4, 0.5),
	)
	grid := neutralnet.UniformGrid(0.6, 1.4, 20)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("%dw", workers), func(b *testing.B) {
			b.ReportAllocs()
			eng, err := neutralnet.NewEngine(sys, neutralnet.WithWorkers(workers))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, err := eng.Duopoly([2]float64{0.5, 0.5}, 3, 1)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.SweepPrices(grid, grid); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
