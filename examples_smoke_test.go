package neutralnet_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesAndCommandsRun executes every example and command end to end
// via `go run`, asserting success and a key phrase in each output. This
// keeps the runnable documentation honest: an API change that breaks an
// example fails the suite, not a user.
func TestExamplesAndCommandsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping subprocess smoke tests in -short mode")
	}
	cases := []struct {
		pkg    string
		args   []string
		expect string
	}{
		{"./examples/quickstart", nil, "ISP revenue gain"},
		{"./examples/sponsored-data", nil, "open competition"},
		{"./examples/zero-rating", nil, "neutral competition"},
		{"./examples/price-regulation", nil, "unregulated monopoly"},
		{"./examples/capacity-planning", nil, "invest"},
		{"./examples/isp-competition", nil, "duopoly"},
		{"./examples/oligopoly", nil, "oligopoly sweep"},
		{"./examples/data-caps", nil, "metered region"},
		{"./examples/investment", nil, "steady state"},
		{"./cmd/figures", []string{"-points", "9", "-charts=false"}, "shape checks"},
		{"./cmd/subsidize", nil, "equilibrium"},
		{"./cmd/compare", nil, "subsidization (Nash)"},
		{"./cmd/robustness", []string{"-markets", "5"}, "Corollary 1"},
		{"./cmd/flowsim", []string{"-users", "150"}, "fit m(t)"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(strings.TrimPrefix(tc.pkg, "./"), func(t *testing.T) {
			t.Parallel()
			args := append([]string{"run", tc.pkg}, tc.args...)
			out, err := exec.Command("go", args...).CombinedOutput()
			if err != nil {
				t.Fatalf("go run %s failed: %v\n%s", tc.pkg, err, out)
			}
			if !strings.Contains(string(out), tc.expect) {
				t.Fatalf("output of %s missing %q:\n%s", tc.pkg, tc.expect, out)
			}
		})
	}
}
