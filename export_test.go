package neutralnet

import "neutralnet/internal/sweep"

// Test-only exports. This file is compiled only into the test binary, so
// the deterministic fault seam (internal/faultinject) stays unreachable
// from production code: these setters are the single way to arm a hook on
// an Engine or session.

// SetFaultHook arms the Engine's per-point fault seam: h is consulted once
// per sweep point with the point's row-major rank, before the solve. Arm
// before the sweep starts; nil disarms.
func (e *Engine) SetFaultHook(h sweep.FaultHook) { e.cfg.faultHook = h }

// SetFaultHook arms the duopoly session's per-point fault seam.
func (s *DuopolySession) SetFaultHook(h sweep.FaultHook) { s.faultHook = h }

// SetFaultHook arms the oligopoly session's per-point fault seam.
func (s *OligopolySession) SetFaultHook(h sweep.FaultHook) { s.faultHook = h }
