package neutralnet

import (
	"context"
	"fmt"
	"math"
	"sync"

	"neutralnet/internal/numeric"
	"neutralnet/internal/oligopoly"
	"neutralnet/internal/solver"
	"neutralnet/internal/sweep"
	"neutralnet/internal/sweep/path"
)

// OligopolySession is the N-ISP generalization of DuopolySession: a
// reusable equilibrium-computation session over an N-network access market
// sharing the Engine's CP catalog. It owns one oligopoly workspace (so
// repeated solves are allocation-free once warm), a bounded equilibrium
// cache keyed on the price vector, and a warm-start store seeding each CP
// equilibrium from the previous one.
//
// An OligopolySession is safe for concurrent use (solves are serialized on
// the one workspace; sweeps run their own worker pools on private
// workspaces). Like DuopolySession, warm starting makes a solved
// equilibrium depend on the session's solve history within solver
// tolerance; the sweeps are the exception — they never read the session
// state, so their surfaces are bit-identical regardless of history or
// worker count.
type OligopolySession struct {
	m       oligopoly.Market
	workers int

	// Adaptive-refinement knobs, inherited from the Engine's options
	// (WithRefineObjective / WithRefineBudget / WithRefineDepth).
	objective    string
	refineBudget int
	refineDepth  int

	// quantiles are the probabilities tracked by SweepPricesStream
	// summaries (WithQuantiles).
	quantiles []float64

	// telem accumulates the solver layer's scheme decisions for this
	// session, shared with every sweep worker; read through SolverStats.
	telem solver.Telemetry

	// faultHook is the test-only deterministic fault seam (see
	// internal/faultinject), called once per sweep point with its
	// row-major rank. Settable only from export_test.go; nil in
	// production.
	faultHook sweep.FaultHook

	mu      sync.Mutex
	ws      *oligopoly.Workspace
	warmBuf []float64
	warm    []float64
	cache   map[string]OligopolyOutcome
	order   []string // insertion order, for bounded FIFO eviction
	cap     int
}

// OligopolyOutcome is one solved oligopoly competition point: the CP
// subsidy equilibrium at fixed access prices, with every network's physical
// state summarized. All slices are owned by the outcome.
type OligopolyOutcome struct {
	P       []float64 // access prices (p₁..p_N)
	Shares  []float64 // logit user split
	S       []float64 // CP subsidy equilibrium (shared across networks)
	Phi     []float64 // per-network equilibrium utilization
	Revenue []float64 // per-ISP usage revenue p_k·Σθ^k
	Welfare float64   // Σ v_i·Σ_k θ_i^k
}

// TotalRevenue returns the combined ISP revenue Σ_k p_k·Σθ^k.
func (o *OligopolyOutcome) TotalRevenue() float64 {
	total := 0.0
	for _, r := range o.Revenue {
		total += r
	}
	return total
}

func (o OligopolyOutcome) clone() OligopolyOutcome {
	o.P = append([]float64(nil), o.P...)
	o.Shares = append([]float64(nil), o.Shares...)
	o.S = append([]float64(nil), o.S...)
	o.Phi = append([]float64(nil), o.Phi...)
	o.Revenue = append([]float64(nil), o.Revenue...)
	return o
}

// priceKey encodes a price vector as a FIFO-cache map key from the exact
// float bits, with −0 normalized to +0 so the bit key agrees with ==
// equality on every price a solve can cache (the duopoly's array key has
// the same −0 folding through ==).
func priceKey(p []float64) string {
	buf := make([]byte, 0, 8*len(p))
	for _, v := range p {
		if v == 0 {
			v = 0 // fold −0 into +0
		}
		b := math.Float64bits(v)
		buf = append(buf,
			byte(b), byte(b>>8), byte(b>>16), byte(b>>24),
			byte(b>>32), byte(b>>40), byte(b>>48), byte(b>>56))
	}
	return string(buf)
}

// Oligopoly opens an N-ISP competition session over the Engine's CP catalog
// and utilization family: one capacity per ISP in mu (N = len(mu); the
// Engine's own µ is not consulted — the oligopoly splits the access market
// explicitly), logit price sensitivity sigma, and subsidy cap q. The
// session inherits the Engine's Nash scheme, utilization kernel and
// worker-pool size, so WithSolver, WithUtilizationSolver and WithWorkers
// reach the oligopoly end-to-end; the hot-path warm kernel is the default
// here as everywhere. The session keeps its own solver telemetry
// (SolverStats), separate from the Engine's.
//
// An N = 2 session reproduces the DuopolySession's results bit for bit; an
// N = 1 market's MonopolyBenchmark reproduces the duopoly benchmark — both
// pinned by the root equivalence suite.
func (e *Engine) Oligopoly(mu []float64, sigma, q float64) (*OligopolySession, error) {
	s := &OligopolySession{
		m: oligopoly.Market{
			CPs: e.sys.CPs, Util: e.sys.Util,
			Mu: append([]float64(nil), mu...), Sigma: sigma, Q: q,
			Solver:     string(e.cfg.solver.Method),
			UtilSolver: e.cfg.solver.UtilSolver,
			Fallback:   string(e.cfg.solver.Fallback),
		},
		workers:      e.cfg.workers,
		objective:    e.cfg.objective,
		refineBudget: e.cfg.refineBudget,
		refineDepth:  e.cfg.refineDepth,
		quantiles:    e.cfg.quantiles,
		ws:           oligopoly.NewWorkspace(),
		cap:          e.cfg.cacheSize,
	}
	s.m.Telemetry = &s.telem
	if err := s.m.Validate(); err != nil {
		return nil, err
	}
	if s.cap > 0 {
		s.cache = make(map[string]OligopolyOutcome, s.cap)
	}
	return s, nil
}

// Players returns N, the session's ISP count.
func (s *OligopolySession) Players() int { return s.m.Players() }

// CacheLen returns the number of cached oligopoly equilibria.
func (s *OligopolySession) CacheLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cache)
}

// CachedPrices returns the resident cache keys oldest-first — the FIFO
// eviction order: the next insertion past the cache bound evicts the first
// returned vector. Intended for observability and tests; the slices are a
// snapshot the caller owns.
func (s *OligopolySession) CachedPrices() [][]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([][]float64, len(s.order))
	for i, key := range s.order {
		out[i] = append([]float64(nil), s.cache[key].P...)
	}
	return out
}

// SolverStats returns a snapshot of the session's auto-scheme branch
// counters, accumulated across Solve, the sweeps (all workers),
// PriceEquilibrium and MonopolyBenchmark. All counters stay zero unless the
// Engine selected WithSolver(Auto). Safe to call concurrently with a
// running sweep.
func (s *OligopolySession) SolverStats() SolverStats {
	c := s.telem.Snapshot()
	return SolverStats{
		AutoGaussSeidel: c.GaussSeidel,
		AutoSOR:         c.SOR,
		AutoAnderson:    c.Anderson,
		FallbackSolves:  c.Fallbacks,
	}
}

// Solve returns the CP subsidization equilibrium of the oligopoly at access
// prices p (one per ISP), consulting the cache and warm-starting from the
// session's previous solve.
func (s *OligopolySession) Solve(p ...float64) (OligopolyOutcome, error) {
	if len(p) != s.m.Players() {
		return OligopolyOutcome{}, fmt.Errorf("oligopoly session: %d prices for %d ISPs", len(p), s.m.Players())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.solveLocked(p)
}

// SolveCtx is Solve with cooperative cancellation: a single solve is one
// cancellation segment, so ctx is checked once on entry — an already
// cancelled context returns ctx.Err() with the session cache and warm
// store untouched, and an uncancelled call is bit-identical to Solve.
func (s *OligopolySession) SolveCtx(ctx context.Context, p ...float64) (OligopolyOutcome, error) {
	if err := ctx.Err(); err != nil {
		return OligopolyOutcome{}, err
	}
	return s.Solve(p...)
}

func (s *OligopolySession) solveLocked(p []float64) (OligopolyOutcome, error) {
	key := priceKey(p)
	if out, ok := s.cache[key]; ok {
		// Refresh the warm chain from the hit, exactly as the duopoly
		// session does: the next solve should seed from this profile, its
		// nearest solved neighbor in solve order.
		s.warm = numeric.CopyProfile(&s.warmBuf, out.S)
		return out.clone(), nil
	}
	prof, st, err := s.m.CPEquilibriumWS(s.ws, p, s.warm)
	if err != nil {
		return OligopolyOutcome{}, &SolveError{
			Surface: sweep.SurfaceOligopoly, Prices: append([]float64(nil), p...),
			Scheme: sweep.ResolveScheme(s.m.Solver), Err: err,
		}
	}
	s.warm = numeric.CopyProfile(&s.warmBuf, prof)
	out := s.outcome(p, prof, st)
	s.storeLocked(key, out)
	return out, nil
}

// outcome assembles an owning OligopolyOutcome from a (possibly
// workspace-borrowed) profile and state.
func (s *OligopolySession) outcome(p []float64, prof []float64, st oligopoly.State) OligopolyOutcome {
	n := s.m.Players()
	out := OligopolyOutcome{
		P:       append([]float64(nil), p...),
		Shares:  append([]float64(nil), st.Shares...),
		S:       append([]float64(nil), prof...),
		Phi:     make([]float64, n),
		Revenue: make([]float64, n),
		Welfare: s.m.Welfare(st),
	}
	for k := 0; k < n; k++ {
		out.Phi[k] = st.Net[k].Phi
		out.Revenue[k] = st.Revenue(k)
	}
	return out
}

// storeLocked inserts an outcome into the bounded FIFO cache, evicting the
// oldest insertion when full. Re-storing a resident vector overwrites the
// cached outcome and refreshes its FIFO position to newest, matching the
// duopoly session's contract.
func (s *OligopolySession) storeLocked(key string, out OligopolyOutcome) {
	if s.cache == nil {
		return
	}
	if _, ok := s.cache[key]; ok {
		s.cache[key] = out.clone()
		for k, k2 := range s.order {
			if k2 == key {
				s.order = append(append(s.order[:k], s.order[k+1:]...), key)
				break
			}
		}
		return
	}
	if len(s.order) >= s.cap {
		oldest := s.order[0]
		s.order = s.order[1:]
		delete(s.cache, oldest)
	}
	s.cache[key] = out.clone()
	s.order = append(s.order, key)
}

// OligopolySweepResult is a solved (p₁..p_N) price hypercube in row-major
// order: Outcomes[rank] is the equilibrium at the grid point whose
// coordinates linearize to rank (At resolves coordinates). Grids holds the
// session's own copies of the swept per-ISP price grids.
type OligopolySweepResult struct {
	Grids [][]float64
	// Names are the CP names, matching each outcome's S order — the
	// subsidy column labels of the CSV export.
	Names []string
	// Outcomes is the flat row-major surface: len = Π len(Grids[k]).
	Outcomes []OligopolyOutcome
	// Workers is the worker-pool size the sweep effectively ran on (the
	// session's WithWorkers setting clamped to the chain count). It is a
	// throughput record only: Outcomes is bit-identical at any value.
	Workers int
	// Chains is the number of independent warm-start chains the snake path
	// was cut into — the sweep's parallelism budget.
	Chains int
}

// Len returns the number of swept grid points.
func (r *OligopolySweepResult) Len() int { return len(r.Outcomes) }

// At returns the outcome at grid coordinates idx (one index per ISP).
func (r *OligopolySweepResult) At(idx ...int) OligopolyOutcome {
	rank := 0
	for d, i := range idx {
		rank = rank*len(r.Grids[d]) + i
	}
	return r.Outcomes[rank]
}

// SweepPrices solves the CP equilibrium over the Cartesian price hypercube
// ×_k grids[k] on a deterministic worker pool — the same traversal
// scheduler that backs Engine.Sweep and the duopoly price plane, at N
// dimensions. The hypercube is linearized in snake order (consecutive
// points are always price neighbors, including at axis turns) and cut into
// fixed, grid-determined segments; each worker owns a private workspace,
// and within a segment both the subsidy profile and the per-network
// utilization seeds φ chain point to point while every segment cold-starts
// its first point. Results are therefore bit-identical at any worker count
// (WithWorkers is purely a throughput knob) and independent of the
// session's history: the sweep never reads the session cache or warm store.
// Solved points populate the cache afterwards in snake order — under a
// cache bound the sweep's last points stay resident — and the warm store is
// refreshed from the final path point, so follow-up Solve calls continue
// the chain. SweepPrices is SweepPricesCtx under context.Background():
// never cancelled.
func (s *OligopolySession) SweepPrices(grids ...[]float64) (*OligopolySweepResult, error) {
	return s.SweepPricesCtx(context.Background(), grids...)
}

// SweepPricesCtx is SweepPrices with cooperative cancellation at segment
// boundaries: the worker pool polls ctx.Err() once per claimed warm-start
// segment, so an uncancelled run is bit-identical to SweepPrices at any
// worker count, and a cancelled run returns ctx.Err() with the session
// cache and warm store exactly as they were before the call — the fold
// into the session happens only after the whole sweep succeeds. A
// panicking worker likewise surfaces as a *PanicError with nothing folded.
func (s *OligopolySession) SweepPricesCtx(ctx context.Context, grids ...[]float64) (*OligopolySweepResult, error) {
	dims, err := s.sweepDims(grids)
	if err != nil {
		return nil, err
	}
	pl := path.New(dims, 0)
	workers := s.sweepWorkers(pl)
	res := &OligopolySweepResult{
		Grids:    cloneGrids(grids),
		Names:    s.cpNames(),
		Outcomes: make([]OligopolyOutcome, pl.Len()),
		Workers:  workers,
		Chains:   pl.Chains(),
	}

	err = path.RunCtx(ctx, pl, workers,
		func() *oligoWorker { return s.newOligoWorker() },
		func(w *oligoWorker, lo, hi int) error {
			return s.runPriceChain(pl, res.Grids, lo, hi, func(_, rank int, out OligopolyOutcome) {
				res.Outcomes[rank] = out
			}, w)
		})
	if err != nil {
		return nil, err
	}

	// Fold the surface back into the session: cache the tail of the snake
	// path (only the last cap insertions can survive the FIFO bound — skip
	// the churn for the rest) and continue the warm chain from the final
	// path point, exactly as a sequential walk would have left it.
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := make([]int, len(dims))
	if s.cache != nil {
		lo := 0
		if pl.Len() > s.cap {
			lo = pl.Len() - s.cap
		}
		for k := lo; k < pl.Len(); k++ {
			pl.Coords(k, idx)
			out := res.Outcomes[pl.Index(idx)]
			s.storeLocked(priceKey(out.P), out)
		}
	}
	pl.Coords(pl.Len()-1, idx)
	s.warm = numeric.CopyProfile(&s.warmBuf, res.Outcomes[pl.Index(idx)].S)
	return res, nil
}

// sweepDims validates a price-grid list against the session's ISP count and
// returns the hypercube dimensions.
func (s *OligopolySession) sweepDims(grids [][]float64) ([]int, error) {
	if len(grids) != s.m.Players() {
		return nil, fmt.Errorf("oligopoly session: %d price grids for %d ISPs", len(grids), s.m.Players())
	}
	dims := make([]int, len(grids))
	for k, g := range grids {
		if len(g) == 0 {
			return nil, fmt.Errorf("oligopoly session: empty price grid %d", k)
		}
		dims[k] = len(g)
	}
	return dims, nil
}

// sweepWorkers clamps the session's worker setting to the plan's chain
// count.
func (s *OligopolySession) sweepWorkers(pl path.Plan) int {
	workers := s.workers
	if workers < 1 {
		workers = 1
	}
	if c := pl.Chains(); workers > c {
		workers = c
	}
	return workers
}

func cloneGrids(grids [][]float64) [][]float64 {
	out := make([][]float64, len(grids))
	for k, g := range grids {
		out[k] = append([]float64(nil), g...)
	}
	return out
}

// ArgmaxTotalRevenue returns the grid outcome maximizing combined ISP
// revenue; ties resolve to the lowest row-major rank. Outcomes whose
// combined revenue is non-finite are skipped — a NaN at one grid point must
// not poison the maximum by failing every comparison; if every outcome is
// non-finite the first outcome is returned.
func (r *OligopolySweepResult) ArgmaxTotalRevenue() OligopolyOutcome {
	best := r.Outcomes[0]
	bestV := math.Inf(-1)
	for i := range r.Outcomes {
		v := r.Outcomes[i].TotalRevenue()
		if !math.IsNaN(v) && !math.IsInf(v, 0) && v > bestV {
			best, bestV = r.Outcomes[i], v
		}
	}
	return best
}

// PriceEquilibrium solves the N ISPs' price competition on [0, pMax] by
// sequential best responses (maxRounds ≤ 0 selects the default), with the
// CPs re-equilibrating inside every revenue evaluation, and returns the
// equilibrium outcome. It runs entirely on its own workspace and leaves the
// session cache and warm store untouched, for the same history-isolation
// reasons as the duopoly session.
func (s *OligopolySession) PriceEquilibrium(pMax float64, maxRounds int) (OligopolyOutcome, error) {
	p, prof, st, err := s.m.PriceEquilibrium(pMax, maxRounds)
	if err != nil {
		return OligopolyOutcome{}, err
	}
	return s.outcome(p, prof, st), nil
}

// MonopolyBenchmark solves the capacity-equivalent single-ISP comparator
// (µ = Σ_k µ_k) at its revenue-optimal price on [0, pMax], for the
// competition-vs-monopoly comparisons of §6 at any N.
func (s *OligopolySession) MonopolyBenchmark(pMax float64) (price float64, welfare float64, subsidies []float64, err error) {
	p, st, sub, err := s.m.MonopolyBenchmark(pMax)
	if err != nil {
		return 0, 0, nil, err
	}
	w := 0.0
	for i, cp := range s.m.CPs {
		w += cp.Value * st.Theta[i]
	}
	return p, w, sub, nil
}
