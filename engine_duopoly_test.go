package neutralnet_test

import (
	"math"
	"testing"

	"neutralnet"
)

func duopolySystem() *neutralnet.System {
	return neutralnet.NewSystem(1,
		neutralnet.NewCP("video", 4, 2, 1.0),
		neutralnet.NewCP("social", 2, 4, 0.5),
	)
}

func newDuopoly(t *testing.T, opts ...neutralnet.Option) *neutralnet.DuopolySession {
	t.Helper()
	eng, err := neutralnet.NewEngine(duopolySystem(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.Duopoly([2]float64{0.5, 0.5}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestDuopolySessionSolveAndCache checks the session's Solve path: a
// repeated price pair is answered from the cache with identical values, and
// mutating a returned outcome cannot corrupt the cached copy.
func TestDuopolySessionSolveAndCache(t *testing.T) {
	s := newDuopoly(t)
	out1, err := s.Solve(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.CacheLen() != 1 {
		t.Fatalf("cache len %d after first solve", s.CacheLen())
	}
	out1.S[0] = -1 // must not reach the cache
	out2, err := s.Solve(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.CacheLen() != 1 {
		t.Fatalf("cache len %d after cache hit", s.CacheLen())
	}
	if out2.S[0] == -1 {
		t.Fatal("cached outcome aliases a caller-mutated slice")
	}
	if out2.Welfare != out1.Welfare || out2.Phi != out1.Phi {
		t.Fatal("cache hit returned different values")
	}
	// Sanity of the physical summary.
	if !(out2.Shares[0] > 0 && out2.Shares[1] > 0 && math.Abs(out2.Shares[0]+out2.Shares[1]-1) < 1e-12) {
		t.Fatalf("shares %v are not a split", out2.Shares)
	}
	if out2.Revenue[0] <= 0 || out2.Welfare <= 0 {
		t.Fatalf("degenerate outcome: %+v", out2)
	}
}

// TestDuopolySessionSweepPrices checks the snake-ordered grid sweep: the
// surface has the requested shape, every point agrees with a fresh
// session's direct solve to solver tolerance (warm starts may differ within
// it), and asymmetric prices favor the cheaper ISP.
func TestDuopolySessionSweepPrices(t *testing.T) {
	s := newDuopoly(t)
	p1 := neutralnet.UniformGrid(0.6, 1.2, 3)
	p2 := neutralnet.UniformGrid(0.8, 1.0, 2)
	res, err := s.SweepPrices(p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 3 || len(res.Outcomes[0]) != 2 {
		t.Fatalf("surface shape %dx%d", len(res.Outcomes), len(res.Outcomes[0]))
	}
	for i := range p1 {
		for j := range p2 {
			out := res.Outcomes[i][j]
			if out.P != [2]float64{p1[i], p2[j]} {
				t.Fatalf("outcome (%d,%d) carries prices %v", i, j, out.P)
			}
			fresh, err := newDuopoly(t).Solve(p1[i], p2[j])
			if err != nil {
				t.Fatal(err)
			}
			for k := range out.S {
				if d := math.Abs(out.S[k] - fresh.S[k]); d > 1e-5 {
					t.Fatalf("sweep point (%d,%d) s[%d] differs from direct solve by %g", i, j, k, d)
				}
			}
		}
	}
	// Cheaper access draws the larger share.
	asym := res.Outcomes[0][1] // p1 = 0.6 < p2 = 1.0
	if asym.Shares[0] <= asym.Shares[1] {
		t.Fatalf("cheaper ISP did not win share: %v at prices %v", asym.Shares, asym.P)
	}
}

// TestDuopolySessionSolverEndToEnd exercises the registry dispatch through
// the public session: the auto scheme and the explicitly cold utilization
// kernel agree with the defaults to solver tolerance, and an unknown scheme
// surfaces from the first solve.
func TestDuopolySessionSolverEndToEnd(t *testing.T) {
	ref, err := newDuopoly(t).Solve(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range [][]neutralnet.Option{
		{neutralnet.WithSolver("auto")},
		{neutralnet.WithUtilizationSolver(neutralnet.UtilBrent)},
		{neutralnet.WithSolver(neutralnet.Anderson), neutralnet.WithUtilizationSolver(neutralnet.UtilNewton)},
	} {
		out, err := newDuopoly(t, opts...).Solve(1, 1)
		if err != nil {
			t.Fatal(err)
		}
		for k := range ref.S {
			if d := math.Abs(out.S[k] - ref.S[k]); d > 1e-5 {
				t.Fatalf("s[%d] differs from default by %g under %d options", k, d, len(opts))
			}
		}
	}
	bad := newDuopoly(t, neutralnet.WithSolver("no-such-scheme"))
	if _, err := bad.Solve(1, 1); err == nil {
		t.Fatal("unknown solver name must surface from Solve")
	}
}

// TestDuopolyValidation surfaces market validation at session construction.
func TestDuopolyValidation(t *testing.T) {
	eng, err := neutralnet.NewEngine(duopolySystem())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Duopoly([2]float64{0, 0.5}, 3, 1); err == nil {
		t.Fatal("non-positive capacity must be rejected")
	}
	if _, err := eng.Duopoly([2]float64{0.5, 0.5}, -1, 1); err == nil {
		t.Fatal("negative sigma must be rejected")
	}
}
