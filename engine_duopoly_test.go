package neutralnet_test

import (
	"fmt"
	"math"
	"testing"

	"neutralnet"
)

func duopolySystem() *neutralnet.System {
	return neutralnet.NewSystem(1,
		neutralnet.NewCP("video", 4, 2, 1.0),
		neutralnet.NewCP("social", 2, 4, 0.5),
	)
}

func newDuopoly(t *testing.T, opts ...neutralnet.Option) *neutralnet.DuopolySession {
	t.Helper()
	eng, err := neutralnet.NewEngine(duopolySystem(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.Duopoly([2]float64{0.5, 0.5}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestDuopolySessionSolveAndCache checks the session's Solve path: a
// repeated price pair is answered from the cache with identical values, and
// mutating a returned outcome cannot corrupt the cached copy.
func TestDuopolySessionSolveAndCache(t *testing.T) {
	s := newDuopoly(t)
	out1, err := s.Solve(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.CacheLen() != 1 {
		t.Fatalf("cache len %d after first solve", s.CacheLen())
	}
	out1.S[0] = -1 // must not reach the cache
	out2, err := s.Solve(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.CacheLen() != 1 {
		t.Fatalf("cache len %d after cache hit", s.CacheLen())
	}
	if out2.S[0] == -1 {
		t.Fatal("cached outcome aliases a caller-mutated slice")
	}
	if out2.Welfare != out1.Welfare || out2.Phi != out1.Phi {
		t.Fatal("cache hit returned different values")
	}
	// Sanity of the physical summary.
	if !(out2.Shares[0] > 0 && out2.Shares[1] > 0 && math.Abs(out2.Shares[0]+out2.Shares[1]-1) < 1e-12) {
		t.Fatalf("shares %v are not a split", out2.Shares)
	}
	if out2.Revenue[0] <= 0 || out2.Welfare <= 0 {
		t.Fatalf("degenerate outcome: %+v", out2)
	}
}

// TestDuopolySessionSweepPrices checks the snake-ordered grid sweep: the
// surface has the requested shape, every point agrees with a fresh
// session's direct solve to solver tolerance (warm starts may differ within
// it), and asymmetric prices favor the cheaper ISP.
func TestDuopolySessionSweepPrices(t *testing.T) {
	s := newDuopoly(t)
	p1 := neutralnet.UniformGrid(0.6, 1.2, 3)
	p2 := neutralnet.UniformGrid(0.8, 1.0, 2)
	res, err := s.SweepPrices(p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 3 || len(res.Outcomes[0]) != 2 {
		t.Fatalf("surface shape %dx%d", len(res.Outcomes), len(res.Outcomes[0]))
	}
	for i := range p1 {
		for j := range p2 {
			out := res.Outcomes[i][j]
			if out.P != [2]float64{p1[i], p2[j]} {
				t.Fatalf("outcome (%d,%d) carries prices %v", i, j, out.P)
			}
			fresh, err := newDuopoly(t).Solve(p1[i], p2[j])
			if err != nil {
				t.Fatal(err)
			}
			for k := range out.S {
				if d := math.Abs(out.S[k] - fresh.S[k]); d > 1e-5 {
					t.Fatalf("sweep point (%d,%d) s[%d] differs from direct solve by %g", i, j, k, d)
				}
			}
		}
	}
	// Cheaper access draws the larger share.
	asym := res.Outcomes[0][1] // p1 = 0.6 < p2 = 1.0
	if asym.Shares[0] <= asym.Shares[1] {
		t.Fatalf("cheaper ISP did not win share: %v at prices %v", asym.Shares, asym.P)
	}
}

// TestDuopolySessionSolverEndToEnd exercises the registry dispatch through
// the public session: the auto scheme and the explicitly cold utilization
// kernel agree with the defaults to solver tolerance, and an unknown scheme
// surfaces from the first solve.
func TestDuopolySessionSolverEndToEnd(t *testing.T) {
	ref, err := newDuopoly(t).Solve(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range [][]neutralnet.Option{
		{neutralnet.WithSolver("auto")},
		{neutralnet.WithUtilizationSolver(neutralnet.UtilBrent)},
		{neutralnet.WithSolver(neutralnet.Anderson), neutralnet.WithUtilizationSolver(neutralnet.UtilNewton)},
	} {
		out, err := newDuopoly(t, opts...).Solve(1, 1)
		if err != nil {
			t.Fatal(err)
		}
		for k := range ref.S {
			if d := math.Abs(out.S[k] - ref.S[k]); d > 1e-5 {
				t.Fatalf("s[%d] differs from default by %g under %d options", k, d, len(opts))
			}
		}
	}
	bad := newDuopoly(t, neutralnet.WithSolver("no-such-scheme"))
	if _, err := bad.Solve(1, 1); err == nil {
		t.Fatal("unknown solver name must surface from Solve")
	}
}

// TestDuopolyValidation surfaces market validation at session construction.
func TestDuopolyValidation(t *testing.T) {
	eng, err := neutralnet.NewEngine(duopolySystem())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Duopoly([2]float64{0, 0.5}, 3, 1); err == nil {
		t.Fatal("non-positive capacity must be rejected")
	}
	if _, err := eng.Duopoly([2]float64{0.5, 0.5}, -1, 1); err == nil {
		t.Fatal("negative sigma must be rejected")
	}
}

// outcomesBitIdentical fails the test unless a and b agree bit for bit in
// every field, including the subsidy profile.
func outcomesBitIdentical(t *testing.T, label string, a, b neutralnet.DuopolyOutcome) {
	t.Helper()
	if a.P != b.P || a.Shares != b.Shares || a.Phi != b.Phi || a.Revenue != b.Revenue || a.Welfare != b.Welfare {
		t.Fatalf("%s: outcomes differ: %+v vs %+v", label, a, b)
	}
	if len(a.S) != len(b.S) {
		t.Fatalf("%s: profile lengths differ", label)
	}
	for k := range a.S {
		if a.S[k] != b.S[k] {
			t.Fatalf("%s: s[%d] differs bitwise: %x vs %x", label, k, a.S[k], b.S[k])
		}
	}
}

// TestDuopolySweepDeterministicAcrossWorkers pins the parallel sweep's core
// guarantee on a 20×20 grid: bit-identical surfaces at 1, 4 and 9 workers,
// and independence from the session's prior history (a session that already
// solved scattered points sweeps to the same bits as a fresh one). Runs
// under -race in CI.
func TestDuopolySweepDeterministicAcrossWorkers(t *testing.T) {
	p1 := neutralnet.UniformGrid(0.5, 1.4, 20)
	p2 := neutralnet.UniformGrid(0.6, 1.5, 20)
	var base *neutralnet.DuopolySweepResult
	for _, workers := range []int{1, 4, 9} {
		s := newDuopoly(t, neutralnet.WithWorkers(workers))
		if workers == 4 {
			// History must not leak into the sweep: pre-solve a few points
			// (warming the session store and cache) before sweeping.
			for _, p := range [][2]float64{{0.5, 0.6}, {1.4, 1.5}, {0.9, 0.8}} {
				if _, err := s.Solve(p[0], p[1]); err != nil {
					t.Fatal(err)
				}
			}
		}
		res, err := s.SweepPrices(p1, p2)
		if err != nil {
			t.Fatal(err)
		}
		if res.Workers != workers || res.Chains != 25 {
			t.Fatalf("workers=%d: recorded workers=%d chains=%d", workers, res.Workers, res.Chains)
		}
		if base == nil {
			base = res
			continue
		}
		for i := range p1 {
			for j := range p2 {
				outcomesBitIdentical(t, fmt.Sprintf("workers=%d point (%d,%d)", workers, i, j),
					base.Outcomes[i][j], res.Outcomes[i][j])
			}
		}
	}
}

// TestDuopolySweepResultOwnsGrids asserts the satellite aliasing fix:
// mutating the caller's grid slices after the sweep must not corrupt the
// result's P1/P2.
func TestDuopolySweepResultOwnsGrids(t *testing.T) {
	s := newDuopoly(t)
	p1 := neutralnet.UniformGrid(0.6, 1.2, 3)
	p2 := neutralnet.UniformGrid(0.8, 1.0, 2)
	res, err := s.SweepPrices(p1, p2)
	if err != nil {
		t.Fatal(err)
	}
	p1[0], p2[0] = -99, -99
	if res.P1[0] != 0.6 || res.P2[0] != 0.8 {
		t.Fatalf("result aliases caller grids: P1[0]=%g P2[0]=%g", res.P1[0], res.P2[0])
	}
}

// TestDuopolySessionCacheFIFO pins the bounded cache's FIFO contract under
// a sweep larger than the bound: the resident keys are exactly the last cap
// points of the snake path, oldest-first, and the next novel solve evicts
// the oldest of them.
func TestDuopolySessionCacheFIFO(t *testing.T) {
	s := newDuopoly(t, neutralnet.WithCache(4))
	p1 := []float64{0.7, 0.9, 1.1} // 3×3 grid, snake: (0,0..2), (1,2..0), (2,0..2)
	p2 := []float64{0.6, 0.8, 1.0}
	if _, err := s.SweepPrices(p1, p2); err != nil {
		t.Fatal(err)
	}
	// Snake path: row 0.7 forward, row 0.9 reversed, row 1.1 forward; the
	// last four insertions are the tail of that walk.
	want := [][2]float64{{0.9, 0.6}, {1.1, 0.6}, {1.1, 0.8}, {1.1, 1.0}}
	got := s.CachedPrices()
	if len(got) != 4 || s.CacheLen() != 4 {
		t.Fatalf("cache holds %d/%d entries, want 4", len(got), s.CacheLen())
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("FIFO order[%d] = %v, want %v (full: %v)", k, got[k], want[k], got)
		}
	}
	// A novel solve evicts the oldest resident pair.
	if _, err := s.Solve(2, 2); err != nil {
		t.Fatal(err)
	}
	got = s.CachedPrices()
	if got[0] != want[1] || got[3] != [2]float64{2, 2} {
		t.Fatalf("eviction order broken: %v", got)
	}
}

// TestDuopolyWarmRefreshOnCacheHit pins the satellite warm-chain fix: after
// a cache hit the next solve seeds from the hit profile, so
// Solve(A), Solve(B), Solve(A) [hit], Solve(C) produces the same bits at C
// as a session that ran Solve(A), Solve(C) — the hit rewound the chain to
// A, rather than leaving it dangling at B.
func TestDuopolyWarmRefreshOnCacheHit(t *testing.T) {
	a, b, c := [2]float64{0.7, 0.7}, [2]float64{1.4, 1.3}, [2]float64{0.8, 0.75}

	s1 := newDuopoly(t)
	for _, p := range [][2]float64{a, b, a} {
		if _, err := s1.Solve(p[0], p[1]); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s1.Solve(c[0], c[1])
	if err != nil {
		t.Fatal(err)
	}

	s2 := newDuopoly(t)
	if _, err := s2.Solve(a[0], a[1]); err != nil {
		t.Fatal(err)
	}
	want, err := s2.Solve(c[0], c[1])
	if err != nil {
		t.Fatal(err)
	}
	outcomesBitIdentical(t, "post-hit solve", got, want)
}

// TestDuopolySessionPriceEquilibriumIsolated pins the documented contract
// the PR 4 implementation broke: PriceEquilibrium leaves the session cache
// and warm store untouched — the cache stays empty and a follow-up Solve
// produces the same bits as if the competition never ran.
func TestDuopolySessionPriceEquilibriumIsolated(t *testing.T) {
	a, c := [2]float64{0.9, 0.9}, [2]float64{1.0, 0.95}

	s1 := newDuopoly(t)
	if _, err := s1.Solve(a[0], a[1]); err != nil {
		t.Fatal(err)
	}
	comp, err := s1.PriceEquilibrium(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Welfare <= 0 || comp.Revenue[0] <= 0 {
		t.Fatalf("degenerate competition outcome: %+v", comp)
	}
	if s1.CacheLen() != 1 {
		t.Fatalf("PriceEquilibrium touched the cache: %d entries, want 1", s1.CacheLen())
	}
	got, err := s1.Solve(c[0], c[1])
	if err != nil {
		t.Fatal(err)
	}

	s2 := newDuopoly(t)
	if _, err := s2.Solve(a[0], a[1]); err != nil {
		t.Fatal(err)
	}
	want, err := s2.Solve(c[0], c[1])
	if err != nil {
		t.Fatal(err)
	}
	outcomesBitIdentical(t, "post-competition solve", got, want)
}

// TestDuopolyArgmaxSkipsNonFinite is the NaN-poisoning regression test: a
// NaN (or ±Inf) revenue at the first grid point must not win the argmax.
func TestDuopolyArgmaxSkipsNonFinite(t *testing.T) {
	nan := math.NaN()
	res := &neutralnet.DuopolySweepResult{
		P1: []float64{0, 1}, P2: []float64{0, 1},
		Outcomes: [][]neutralnet.DuopolyOutcome{
			{{P: [2]float64{0, 0}, Revenue: [2]float64{nan, 1}}, {P: [2]float64{0, 1}, Revenue: [2]float64{2, 1}}},
			{{P: [2]float64{1, 0}, Revenue: [2]float64{math.Inf(1), 0}}, {P: [2]float64{1, 1}, Revenue: [2]float64{3, 1}}},
		},
	}
	if best := res.ArgmaxTotalRevenue(); best.P != [2]float64{1, 1} {
		t.Fatalf("argmax picked %v, want the finite maximum (1,1)", best.P)
	}
	// All-non-finite surface: the documented first-outcome fallback.
	res.Outcomes[0][1].Revenue = [2]float64{nan, nan}
	res.Outcomes[1][1].Revenue = [2]float64{nan, nan}
	if best := res.ArgmaxTotalRevenue(); best.P != [2]float64{0, 0} {
		t.Fatalf("all-NaN fallback picked %v, want (0,0)", best.P)
	}
}

// TestDuopolySolverStats exercises the auto-branch telemetry end to end
// through the public session: under WithSolver(Auto) every solve —
// including all sweep workers' — is counted, and under the default scheme
// the counters stay zero.
func TestDuopolySolverStats(t *testing.T) {
	s := newDuopoly(t, neutralnet.WithSolver(neutralnet.Auto), neutralnet.WithWorkers(4))
	grid := neutralnet.UniformGrid(0.7, 1.1, 5)
	if _, err := s.SweepPrices(grid, grid); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(1.3, 1.3); err != nil {
		t.Fatal(err)
	}
	stats := s.SolverStats()
	if got := stats.Total(); got != 26 {
		t.Fatalf("auto branch total %d (stats %+v), want 26 solves counted", got, stats)
	}
	if stats.AutoGaussSeidel == 0 {
		t.Fatalf("fast-contracting duopoly games should stay on Gauss–Seidel: %+v", stats)
	}

	def := newDuopoly(t, neutralnet.WithWorkers(2))
	if _, err := def.SweepPrices(grid, grid); err != nil {
		t.Fatal(err)
	}
	if stats := def.SolverStats(); stats.Total() != 0 {
		t.Fatalf("non-auto scheme recorded branches: %+v", stats)
	}
}

// TestDuopolySweepTailResidencyWithPriorSolves pins the storeLocked
// position-refresh: when a sweep-tail point was already resident before the
// sweep, the fold must still leave exactly the sweep's last cap points
// cached — the stale pre-sweep entry, not the tail point, gets evicted.
func TestDuopolySweepTailResidencyWithPriorSolves(t *testing.T) {
	s := newDuopoly(t, neutralnet.WithCache(4))
	// (0.9, 0.6) is inside the coming sweep's 4-point snake tail; (5, 5) is
	// unrelated and older than the whole sweep.
	for _, p := range [][2]float64{{0.9, 0.6}, {5, 5}} {
		if _, err := s.Solve(p[0], p[1]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.SweepPrices([]float64{0.7, 0.9, 1.1}, []float64{0.6, 0.8, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]float64{{0.9, 0.6}, {1.1, 0.6}, {1.1, 0.8}, {1.1, 1.0}}
	got := s.CachedPrices()
	if len(got) != len(want) {
		t.Fatalf("cache holds %d entries, want %d: %v", len(got), len(want), got)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("residency[%d] = %v, want %v (full: %v)", k, got[k], want[k], got)
		}
	}
	// The fold must also have overwritten the pre-sweep outcome at the tail
	// point: a cache hit there now answers with the sweep's bits, not the
	// stale pre-sweep solve's.
	hit, err := s.Solve(0.9, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	outcomesBitIdentical(t, "cached tail point", hit, res.Outcomes[1][0])
}
