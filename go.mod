module neutralnet

go 1.22
