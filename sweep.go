package neutralnet

import (
	"errors"

	"neutralnet/internal/sweep"
)

// errNilSystem rejects Engine construction over a nil system.
var errNilSystem = errors.New("neutralnet: nil system")

// Sweep surface, re-exported from the internal sweep core so the Engine
// and the internal grid searches (ISP pricing, the figure harness) share
// one implementation.
type (
	// Grid is a Cartesian sweep domain over prices P, policy caps Q and
	// capacities Mu. P is required; Q defaults to {0} and Mu to the
	// system's own capacity.
	Grid = sweep.Grid
	// SweepPoint is one solved grid point: the equilibrium plus the ISP
	// revenue and system welfare there.
	SweepPoint = sweep.Point
	// SweepResult holds the solved points in deterministic order
	// (µ-major, then q, then p) with accessors (ArgmaxRevenue,
	// WelfareSurface, CSV/JSON export — including the streaming
	// WriteCSV/WriteJSON variants).
	SweepResult = sweep.Result
	// SweepSegment is one completed chunk of a sweep, emitted in snake
	// order by Engine.SweepStream and the WithSegmentEmit observer. Its
	// slices are only valid during the emission callback.
	SweepSegment = sweep.Segment
	// SweepSummary is the constant-memory reduction of a streamed sweep:
	// revenue/welfare argmaxes (with the argmax points retained),
	// min/max/mean and the configured quantile estimates, bit-identical to
	// the slab reductions at any worker count.
	SweepSummary = sweep.Summary
	// SweepAccumulator is one objective's online reduction inside a
	// SweepSummary.
	SweepAccumulator = sweep.Accumulator
	// AdaptiveSweepResult is the sparse result of a coarse-to-fine
	// Engine.SweepAdaptive run: the solved points, the refinement
	// bookkeeping, and the argmax under the configured objective.
	AdaptiveSweepResult = sweep.AdaptiveResult
)

// UniformGrid returns n evenly spaced points on [lo, hi] inclusive — the
// usual way to build a Grid axis.
func UniformGrid(lo, hi float64, n int) []float64 { return sweep.Uniform(lo, hi, n) }

// NewSweepAccumulator returns an empty SweepAccumulator tracking the given
// quantile probabilities — the reduction the streaming sweeps fold into,
// exposed for callers building their own reference folds (equivalence
// tests, custom reductions over emitted segments).
func NewSweepAccumulator(quantiles ...float64) SweepAccumulator {
	return sweep.NewAccumulator(quantiles)
}
