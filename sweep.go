package neutralnet

import (
	"errors"

	"neutralnet/internal/sweep"
)

// errNilSystem rejects Engine construction over a nil system.
var errNilSystem = errors.New("neutralnet: nil system")

// Sweep surface, re-exported from the internal sweep core so the Engine
// and the internal grid searches (ISP pricing, the figure harness) share
// one implementation.
type (
	// Grid is a Cartesian sweep domain over prices P, policy caps Q and
	// capacities Mu. P is required; Q defaults to {0} and Mu to the
	// system's own capacity.
	Grid = sweep.Grid
	// SweepPoint is one solved grid point: the equilibrium plus the ISP
	// revenue and system welfare there.
	SweepPoint = sweep.Point
	// SweepResult holds the solved points in deterministic order
	// (µ-major, then q, then p) with accessors (ArgmaxRevenue,
	// WelfareSurface, CSV/JSON export).
	SweepResult = sweep.Result
)

// UniformGrid returns n evenly spaced points on [lo, hi] inclusive — the
// usual way to build a Grid axis.
func UniformGrid(lo, hi float64, n int) []float64 { return sweep.Uniform(lo, hi, n) }
