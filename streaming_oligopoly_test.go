package neutralnet_test

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"neutralnet"
)

// TestOligopolySweepPricesStreamDeterministicMatchesSweepPrices pins the
// streaming sweep at N = 3: segments emit in strict snake order, every
// streamed outcome equals its dense counterpart, the summary is
// bit-identical across 1/4/9 workers (reflect.DeepEqual on the accumulator
// compares every fold, including the quantile sketches), and the session is
// left exactly as a dense SweepPrices leaves it.
func TestOligopolySweepPricesStreamDeterministicMatchesSweepPrices(t *testing.T) {
	grids := oligopolyGrids(3)
	denseSession := newOligopoly(t, equalMu(3))
	dense, err := denseSession.SweepPrices(grids...)
	if err != nil {
		t.Fatal(err)
	}
	denseFollow, err := denseSession.Solve(grids[0][2], grids[1][1], grids[2][0])
	if err != nil {
		t.Fatal(err)
	}

	var ref *neutralnet.OligopolySweepSummary
	for _, workers := range []int{1, 4, 9} {
		s := newOligopoly(t, equalMu(3), neutralnet.WithWorkers(workers), neutralnet.WithQuantiles(0.5))
		covered := 0
		nextSeg := 0
		sum, err := s.SweepPricesStream(grids, func(seg neutralnet.OligopolySweepSegment) error {
			if seg.Index != nextSeg {
				t.Errorf("workers=%d: segment %d emitted out of order (want %d)", workers, seg.Index, nextSeg)
			}
			nextSeg++
			for n, out := range seg.Outcomes {
				if !reflect.DeepEqual(out, dense.Outcomes[seg.Ranks[n]]) {
					t.Errorf("workers=%d: rank %d: stream %+v vs dense %+v", workers, seg.Ranks[n], out, dense.Outcomes[seg.Ranks[n]])
				}
				covered++
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if covered != dense.Len() {
			t.Fatalf("workers=%d: emitted %d outcomes, want %d", workers, covered, dense.Len())
		}
		if best := dense.ArgmaxTotalRevenue(); !reflect.DeepEqual(sum.BestRevenue, best) {
			t.Errorf("workers=%d: BestRevenue %+v vs ArgmaxTotalRevenue %+v", workers, sum.BestRevenue, best)
		}

		// The session must be left exactly as SweepPrices leaves it.
		if !reflect.DeepEqual(s.CachedPrices(), denseSession.CachedPrices()) {
			t.Errorf("workers=%d: cache keys differ from a SweepPrices session", workers)
		}
		follow, err := s.Solve(grids[0][2], grids[1][1], grids[2][0])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(follow, denseFollow) {
			t.Errorf("workers=%d: follow-up solve differs from a SweepPrices session", workers)
		}

		if ref == nil {
			ref = sum
		} else if sum.Points != ref.Points ||
			!reflect.DeepEqual(sum.TotalRevenue, ref.TotalRevenue) ||
			!reflect.DeepEqual(sum.Welfare, ref.Welfare) ||
			!reflect.DeepEqual(sum.BestRevenue, ref.BestRevenue) ||
			!reflect.DeepEqual(sum.BestWelfare, ref.BestWelfare) {
			t.Errorf("workers=%d: summary differs from 1-worker summary", workers)
		}
	}
}

// TestOligopolyStreamSummaryMatchesDenseFold pins the streamed summary to a
// reference fold of the dense surface in snake order — the same
// order-sensitive accumulator fed the same values must produce the same
// bits, quantile sketches included.
func TestOligopolyStreamSummaryMatchesDenseFold(t *testing.T) {
	grids := oligopolyGrids(3)
	dense, err := newOligopoly(t, equalMu(3), neutralnet.WithQuantiles(0.25, 0.75)).SweepPrices(grids...)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := newOligopoly(t, equalMu(3), neutralnet.WithQuantiles(0.25, 0.75), neutralnet.WithWorkers(4)).
		SweepPricesStream(grids, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Reference fold: walk the dense surface in snake-path order, as the
	// in-order emission does.
	rev := neutralnet.NewSweepAccumulator(0.25, 0.75)
	wel := neutralnet.NewSweepAccumulator(0.25, 0.75)
	var bestRev, bestWel neutralnet.OligopolyOutcome
	walkSnakePath([]int{5, 4, 3}, func(rank int) {
		out := dense.Outcomes[rank]
		if rev.Add(rank, out.TotalRevenue()) {
			bestRev = out
		}
		if wel.Add(rank, out.Welfare) {
			bestWel = out
		}
	})
	if !reflect.DeepEqual(sum.TotalRevenue, rev) || !reflect.DeepEqual(sum.Welfare, wel) {
		t.Fatal("stream summary accumulators differ from the dense snake-order fold")
	}
	if !reflect.DeepEqual(sum.BestRevenue, bestRev) || !reflect.DeepEqual(sum.BestWelfare, bestWel) {
		t.Fatal("stream summary argmax outcomes differ from the dense snake-order fold")
	}
}

// walkSnakePath visits a hypercube's row-major ranks in snake-path order:
// the last axis sweeps forward/backward alternately, and each turn
// propagates the parity upward — the reference linearization the sweep
// scheduler uses.
func walkSnakePath(dims []int, visit func(rank int)) {
	idx := make([]int, len(dims))
	dir := make([]int, len(dims))
	for d := range dir {
		dir[d] = 1
	}
	total := 1
	for _, d := range dims {
		total *= d
	}
	for n := 0; n < total; n++ {
		rank := 0
		for d, i := range idx {
			rank = rank*dims[d] + i
		}
		visit(rank)
		for d := len(dims) - 1; d >= 0; d-- {
			next := idx[d] + dir[d]
			if next >= 0 && next < dims[d] {
				idx[d] = next
				break
			}
			dir[d] = -dir[d]
		}
	}
}

// TestOligopolySweepPricesAdaptiveMatchesDense pins the coarse-to-fine
// refinement on the N = 3 hypercube: it must find the dense argmax cell
// within the default ≤40% budget, deterministically across worker counts.
func TestOligopolySweepPricesAdaptiveMatchesDense(t *testing.T) {
	grids := [][]float64{
		neutralnet.UniformGrid(0.6, 1.4, 8),
		neutralnet.UniformGrid(0.6, 1.4, 8),
		neutralnet.UniformGrid(0.7, 1.3, 6),
	}
	dense, err := newOligopoly(t, equalMu(3)).SweepPrices(grids...)
	if err != nil {
		t.Fatal(err)
	}
	best := dense.ArgmaxTotalRevenue()

	var ref *neutralnet.OligopolyAdaptiveResult
	for _, workers := range []int{1, 4} {
		res, err := newOligopoly(t, equalMu(3), neutralnet.WithWorkers(workers)).SweepPricesAdaptive(grids...)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Best, best) {
			t.Errorf("workers=%d: adaptive argmax %+v vs dense %+v", workers, res.Best, best)
		}
		if res.Solved*10 > res.Dense*4 {
			t.Errorf("workers=%d: solved %d of %d points (> 40%%)", workers, res.Solved, res.Dense)
		}
		t.Logf("workers=%d: solved %d/%d (%.0f%%) in %d rounds",
			workers, res.Solved, res.Dense, 100*float64(res.Solved)/float64(res.Dense), res.Rounds)
		if ref == nil {
			ref = res
		} else if !reflect.DeepEqual(res, ref) {
			t.Errorf("workers=%d: adaptive result differs from 1-worker run", workers)
		}
	}
}

// TestOligopolySweepPricesAdaptiveLeavesSessionCold pins the refinement's
// history isolation, as for the duopoly.
func TestOligopolySweepPricesAdaptiveLeavesSessionCold(t *testing.T) {
	grids := oligopolyGrids(3)
	s := newOligopoly(t, equalMu(3))
	if _, err := s.SweepPricesAdaptive(grids...); err != nil {
		t.Fatal(err)
	}
	if n := s.CacheLen(); n != 0 {
		t.Fatalf("adaptive sweep left %d cache entries, want 0", n)
	}
	fresh, err := newOligopoly(t, equalMu(3)).Solve(1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	after, err := s.Solve(1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after, fresh) {
		t.Fatal("solve after adaptive sweep differs from a fresh session solve")
	}
}

// TestOligopolySweepPricesAdaptiveRejectsUnknownObjective pins the error
// path of the objective registry wiring.
func TestOligopolySweepPricesAdaptiveRejectsUnknownObjective(t *testing.T) {
	s := newOligopoly(t, equalMu(3), neutralnet.WithRefineObjective("profit"))
	if _, err := s.SweepPricesAdaptive(oligopolyGrids(3)...); err == nil || !strings.Contains(err.Error(), "unknown adaptive objective") {
		t.Fatalf("want unknown-objective error, got %v", err)
	}
}

// TestOligopolySweepResultCSVStreams pins WriteCSV to CSV byte for byte and
// spot-checks the N-ISP layout: per-ISP column groups, one subsidy column
// per CP, one row-major row per grid point.
func TestOligopolySweepResultCSVStreams(t *testing.T) {
	grids := [][]float64{{0.9, 1.1}, {1.0}, {0.8, 1.2}}
	res, err := newOligopoly(t, equalMu(3)).SweepPrices(grids...)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	csv := res.CSV()
	if buf.String() != csv {
		t.Fatal("WriteCSV bytes differ from CSV()")
	}
	lines := strings.Split(strings.TrimSuffix(csv, "\n"), "\n")
	if len(lines) != 1+res.Len() {
		t.Fatalf("%d CSV lines for %d points", len(lines), res.Len())
	}
	wantHeader := "p1,p2,p3,share1,share2,share3,phi1,phi2,phi3,revenue1,revenue2,revenue3,welfare,s_video,s_social"
	if lines[0] != wantHeader {
		t.Fatalf("header %q, want %q", lines[0], wantHeader)
	}
	// Row-major: row 1 is the outcome at coordinates (0,0,0).
	first := res.At(0, 0, 0)
	if !strings.HasPrefix(lines[1], fmt.Sprintf("%g,%g,%g,", first.P[0], first.P[1], first.P[2])) {
		t.Fatalf("first row %q does not match outcome at (0,0,0)", lines[1])
	}
}
