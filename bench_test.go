// Benchmarks regenerating every figure of the paper's evaluation plus
// ablations of the design choices called out in DESIGN.md. Run with:
//
//	go test -bench=. -benchmem
//
// The Fig* benchmarks are the reproduction harness: each one recomputes the
// data behind the corresponding figure (the paper has no numbered tables).
// The reduced default resolution keeps -bench runs snappy; cmd/figures runs
// the same generators at full resolution.
package neutralnet_test

import (
	"fmt"
	"testing"

	"neutralnet"
	"neutralnet/internal/econ"
	"neutralnet/internal/experiments"
	"neutralnet/internal/flowsim"
	"neutralnet/internal/game"
	"neutralnet/internal/isp"
	"neutralnet/internal/model"
)

const benchPts = 11 // price-grid resolution inside benchmarks

// --- Figures 4-5: one-sided pricing ---------------------------------------

func BenchmarkFig4(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(benchPts, 0)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.CheckFig4(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(benchPts, 0)
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.CheckFig5(r); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures 7-11: subsidization competition -------------------------------

func benchSweep(b *testing.B, check func(*experiments.PolicySweep) error) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sw, err := experiments.RunPolicySweep(benchPts, 0)
		if err != nil {
			b.Fatal(err)
		}
		if err := check(sw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig7(b *testing.B)  { benchSweep(b, experiments.CheckFig7) }
func BenchmarkFig8(b *testing.B)  { benchSweep(b, experiments.CheckFig8) }
func BenchmarkFig9(b *testing.B)  { benchSweep(b, experiments.CheckFig9) }
func BenchmarkFig10(b *testing.B) { benchSweep(b, experiments.CheckFig10) }
func BenchmarkFig11(b *testing.B) { benchSweep(b, experiments.CheckFig11) }

// --- Kernel costs -----------------------------------------------------------

func BenchmarkFixedPoint(b *testing.B) {
	b.ReportAllocs()
	sys := experiments.EightCPGrid()
	m := sys.PopulationsAt(sys.UniformPrices(0.5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.SolveUtilization(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBestResponse(b *testing.B) {
	b.ReportAllocs()
	g, err := game.New(experiments.EightCPGrid(), 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	s := make([]float64, g.N())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.BestResponse(i%g.N(), s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveNash(b *testing.B) {
	b.ReportAllocs()
	g, err := game.New(experiments.EightCPGrid(), 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.SolveNash(game.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveNashAllocs measures the workspace hot path — a warm-started
// Nash solve on a reused game.Workspace — and asserts the tentpole contract
// that it is allocation-free (testing.AllocsPerRun must report zero before
// the timed loop runs).
func BenchmarkSolveNashAllocs(b *testing.B) {
	b.ReportAllocs()
	g, err := game.New(experiments.EightCPGrid(), 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	ws := game.NewWorkspace()
	eq, err := g.SolveNashWS(ws, game.Options{})
	if err != nil {
		b.Fatal(err)
	}
	warm := append([]float64(nil), eq.S...)
	opts := game.Options{Initial: warm}
	if allocs := testing.AllocsPerRun(20, func() {
		if _, err := g.SolveNashWS(ws, opts); err != nil {
			b.Fatal(err)
		}
	}); allocs != 0 {
		b.Fatalf("warm SolveNashWS allocated %v objects/op, want 0", allocs)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.SolveNashWS(ws, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSensitivity(b *testing.B) {
	b.ReportAllocs()
	g, err := game.New(experiments.EightCPGrid(), 0.9, 0.6)
	if err != nil {
		b.Fatal(err)
	}
	eq, err := g.SolveNash(game.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.SensitivityAt(eq.S); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimalPrice(b *testing.B) {
	b.ReportAllocs()
	sys := experiments.EightCPGrid()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := isp.OptimalPrice(sys, 1, 0.05, 2, 9, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Engine sessions ---------------------------------------------------------

// engineBenchSystem mirrors the §5.2 eight-CP catalog through the public
// constructors, so the Engine benchmarks exercise the exported path only.
func engineBenchSystem() *neutralnet.System {
	src := experiments.EightCPGrid()
	return neutralnet.NewSystem(src.Mu, src.CPs...)
}

// engineBenchGrid is a 125-point (p, q) surface — the shape of the paper's
// Figure 7 computation.
func engineBenchGrid() neutralnet.Grid {
	return neutralnet.Grid{
		P: neutralnet.UniformGrid(0.05, 2, 25),
		Q: []float64{0, 0.5, 1, 1.5, 2},
	}
}

// BenchmarkEngineSolveCold is the per-point baseline: one cold equilibrium
// solve through the Engine with cache and warm starts disabled.
func BenchmarkEngineSolveCold(b *testing.B) {
	b.ReportAllocs()
	eng, err := neutralnet.NewEngine(engineBenchSystem(),
		neutralnet.WithCache(0), neutralnet.WithWarmStart(false))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Solve(1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineSolveCached measures the cache-hit path: every iteration
// after the first is answered from the bounded equilibrium cache.
func BenchmarkEngineSolveCached(b *testing.B) {
	b.ReportAllocs()
	eng, err := neutralnet.NewEngine(engineBenchSystem())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Solve(1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineSweep quantifies the Engine's levers on a dense 125-point
// sweep: warm-started chains vs cold per-point solves, the worker pool at
// 1/4/8 workers, and (since the PR 4 default flip) the warm utilization
// kernel with snake-chained φ seeds and seeded best-response brackets
// against the pinned cold kernel ("coldkernel-1w", the pre-flip
// bit-identical path). For a fixed configuration, results are bit-identical
// across worker counts; warm and cold iterates agree only to solver
// tolerance.
func BenchmarkEngineSweep(b *testing.B) {
	b.ReportAllocs()
	grid := engineBenchGrid()
	for _, bc := range []struct {
		name string
		opts []neutralnet.Option
	}{
		{"cold-1w", []neutralnet.Option{neutralnet.WithWarmStart(false), neutralnet.WithWorkers(1), neutralnet.WithCache(0)}},
		{"warm-1w", []neutralnet.Option{neutralnet.WithWorkers(1), neutralnet.WithCache(0)}},
		{"warm-4w", []neutralnet.Option{neutralnet.WithWorkers(4), neutralnet.WithCache(0)}},
		{"warm-8w", []neutralnet.Option{neutralnet.WithWorkers(8), neutralnet.WithCache(0)}},
		{"coldkernel-1w", []neutralnet.Option{neutralnet.WithUtilizationSolver(neutralnet.UtilBrent),
			neutralnet.WithWarmStart(false), neutralnet.WithWorkers(1), neutralnet.WithCache(0)}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			eng, err := neutralnet.NewEngine(engineBenchSystem(), bc.opts...)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := eng.Sweep(grid)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Points) != grid.Size() {
					b.Fatalf("points: %d", len(res.Points))
				}
			}
		})
	}
}

// BenchmarkEngineSweepStream measures the streaming sweep on the same
// 125-point surface as BenchmarkEngineSweep: identical solve work, but the
// slab is never materialized — completed segments fold into the
// constant-memory summary (and here a no-op emission callback). The deltas
// vs BenchmarkEngineSweep/warm-* are the cost of the ordered-emission
// scheduler plus the accumulator folds.
func BenchmarkEngineSweepStream(b *testing.B) {
	b.ReportAllocs()
	grid := engineBenchGrid()
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("%dw", workers), func(b *testing.B) {
			b.ReportAllocs()
			eng, err := neutralnet.NewEngine(engineBenchSystem(),
				neutralnet.WithWorkers(workers), neutralnet.WithCache(0))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sum, err := eng.SweepStream(grid, func(neutralnet.SweepSegment) error { return nil })
				if err != nil {
					b.Fatal(err)
				}
				if sum.Points != grid.Size() {
					b.Fatalf("points: %d", sum.Points)
				}
			}
		})
	}
}

// BenchmarkEngineSweepAdaptive measures the coarse-to-fine argmax search on
// the same 125-point surface; the speedup over BenchmarkEngineSweep is the
// fraction of the dense grid the refinement leaves unsolved (~70% here).
func BenchmarkEngineSweepAdaptive(b *testing.B) {
	b.ReportAllocs()
	grid := engineBenchGrid()
	eng, err := neutralnet.NewEngine(engineBenchSystem(), neutralnet.WithCache(0))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.SweepAdaptive(grid)
		if err != nil {
			b.Fatal(err)
		}
		if res.BestRank < 0 || res.Solved*10 > res.Dense*4 {
			b.Fatalf("solved %d/%d, best rank %d", res.Solved, res.Dense, res.BestRank)
		}
	}
}

// BenchmarkEngineOptimalPrice measures the Engine's price optimization
// (sweep-based scan plus golden refinement).
func BenchmarkEngineOptimalPrice(b *testing.B) {
	b.ReportAllocs()
	eng, err := neutralnet.NewEngine(engineBenchSystem(), neutralnet.WithCache(0))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := eng.OptimalPrice(1, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations ---------------------------------------------------------------

// BenchmarkAblationUtilization compares the equilibrium solve under the three
// utilization families, showing the qualitative results (and costs) do not
// hinge on the paper's linear Φ.
func BenchmarkAblationUtilization(b *testing.B) {
	b.ReportAllocs()
	families := []struct {
		name string
		util econ.Utilization
	}{
		{"linear", econ.LinearUtilization{}},
		{"power1.5", econ.PowerUtilization{Gamma: 1.5}},
		{"saturating", econ.SaturatingUtilization{}},
	}
	for _, fam := range families {
		b.Run(fam.name, func(b *testing.B) {
			b.ReportAllocs()
			sys := experiments.EightCPGrid()
			sys.Util = fam.util
			g, err := game.New(sys, 1, 1)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := g.SolveNash(game.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSolver compares the pluggable Nash iteration schemes:
// sequential Gauss-Seidel, the damped-Jacobi ablation, and the
// Anderson-accelerated simultaneous iteration.
func BenchmarkAblationSolver(b *testing.B) {
	b.ReportAllocs()
	for _, m := range []struct {
		name   string
		method game.Method
	}{
		{"gauss-seidel", game.GaussSeidel},
		{"jacobi-damped", game.JacobiDamped},
		{"anderson", game.Anderson},
		{"sor", game.SOR},
		{"jacobi-adaptive", game.JacobiAdaptive},
		{"auto", game.Auto},
	} {
		b.Run(m.name, func(b *testing.B) {
			b.ReportAllocs()
			g, err := game.New(experiments.EightCPGrid(), 1, 1)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := g.SolveNash(game.Options{Method: m.method, MaxIter: 2000}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDerivative compares the closed-form marginal utility
// against numerical differentiation of the raw utility.
func BenchmarkAblationDerivative(b *testing.B) {
	b.ReportAllocs()
	g, err := game.New(experiments.EightCPGrid(), 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	s := make([]float64, g.N())
	for i := range s {
		s[i] = 0.2
	}
	b.Run("analytic", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := g.MarginalUtility(i%g.N(), s); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("numeric", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.MarginalUtilityNumeric(i%g.N(), s)
		}
	})
}

// BenchmarkFlowsim measures the grounding simulator's event throughput.
func BenchmarkFlowsim(b *testing.B) {
	b.ReportAllocs()
	c := flowsim.DefaultClass()
	c.Users = 100
	cfg := flowsim.Config{
		Capacity: 8,
		Classes:  []flowsim.Class{c},
		Horizon:  120,
		Warmup:   12,
		Seed:     1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i + 1)
		if _, err := flowsim.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCapacityPlan measures the future-work extension's joint search.
func BenchmarkCapacityPlan(b *testing.B) {
	b.ReportAllocs()
	sys := &model.System{
		CPs:  experiments.EightCPGrid().CPs[:4],
		Mu:   1,
		Util: econ.LinearUtilization{},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := isp.CapacityPlan(sys, 1, 0.1, 0.5, 2, 1.5, 5, 0); err != nil {
			b.Fatal(err)
		}
	}
}
