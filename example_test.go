package neutralnet_test

import (
	"fmt"

	"neutralnet"
)

// ExampleSolveEquilibrium reproduces the library's one-screen story: build a
// market, solve the subsidization competition, and read off who sponsors
// whom.
func ExampleSolveEquilibrium() {
	sys := neutralnet.NewSystem(1.0,
		neutralnet.NewCP("video", 5, 2, 1.0),
		neutralnet.NewCP("messaging", 2, 5, 0.5),
	)
	eq, err := neutralnet.SolveEquilibrium(sys, 1.0, 1.0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("video sponsors %.2f per unit; messaging sponsors %.2f\n", eq.S[0], eq.S[1])
	fmt.Printf("utilization %.3f\n", eq.State.Phi)
	// Output:
	// video sponsors 0.74 per unit; messaging sponsors 0.00
	// utilization 0.222
}

// ExampleSolveOneSided shows the status quo baseline the paper starts from:
// a uniform usage price and no CP-side payments.
func ExampleSolveOneSided() {
	sys := neutralnet.NewSystem(1.0,
		neutralnet.NewCP("video", 5, 2, 1.0),
		neutralnet.NewCP("messaging", 2, 5, 0.5),
	)
	st, err := neutralnet.SolveOneSided(sys, 1.0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("throughput %.4f at utilization %.4f\n", st.TotalThroughput(), st.Phi)
	// Output:
	// throughput 0.0913 at utilization 0.0913
}

// ExampleOptimalPrice finds the monopolist ISP's revenue-maximizing usage
// price when subsidization is allowed.
func ExampleOptimalPrice() {
	sys := neutralnet.NewSystem(1.0,
		neutralnet.NewCP("video", 5, 2, 1.0),
		neutralnet.NewCP("messaging", 2, 5, 0.5),
	)
	p, out, err := neutralnet.OptimalPrice(sys, 1.0, 2.0)
	if err != nil {
		panic(err)
	}
	fmt.Printf("p* = %.2f with revenue %.3f\n", p, out.Revenue)
	// Output:
	// p* = 0.61 with revenue 0.291
}
