package neutralnet_test

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"neutralnet"
)

func newOligopoly(t *testing.T, mu []float64, opts ...neutralnet.Option) *neutralnet.OligopolySession {
	t.Helper()
	eng, err := neutralnet.NewEngine(duopolySystem(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	s, err := eng.Oligopoly(mu, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// bitsEq fails unless a and b agree bit for bit.
func bitsEq(t *testing.T, label string, a, b float64) {
	t.Helper()
	if math.Float64bits(a) != math.Float64bits(b) {
		t.Fatalf("%s: %v vs %v differ", label, a, b)
	}
}

func bitsEqSlice(t *testing.T, label string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: length %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		bitsEq(t, fmt.Sprintf("%s[%d]", label, i), a[i], b[i])
	}
}

// oligoMatchesDuo fails unless an N = 2 oligopoly outcome agrees bit for
// bit with a duopoly outcome, field for field.
func oligoMatchesDuo(t *testing.T, label string, o neutralnet.OligopolyOutcome, d neutralnet.DuopolyOutcome) {
	t.Helper()
	bitsEqSlice(t, label+".P", o.P, d.P[:])
	bitsEqSlice(t, label+".Shares", o.Shares, d.Shares[:])
	bitsEqSlice(t, label+".S", o.S, d.S)
	bitsEqSlice(t, label+".Phi", o.Phi, d.Phi[:])
	bitsEqSlice(t, label+".Revenue", o.Revenue, d.Revenue[:])
	bitsEq(t, label+".Welfare", o.Welfare, d.Welfare)
}

// TestOligopolyN2MatchesDuopolySession is the session-level half of the
// acceptance pin: an N = 2 oligopoly session must reproduce the duopoly
// session bit for bit — direct solves, cache behavior, price equilibrium
// and the monopoly benchmark.
func TestOligopolyN2MatchesDuopolySession(t *testing.T) {
	duo := newDuopoly(t)
	oli := newOligopoly(t, []float64{0.5, 0.5})
	if oli.Players() != 2 {
		t.Fatalf("Players() = %d", oli.Players())
	}

	// A short price walk exercising warm chaining and a cache hit.
	walk := [][2]float64{{1, 1}, {1.1, 1}, {1.1, 0.9}, {1, 1}}
	for _, p := range walk {
		od, err := duo.Solve(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		oo, err := oli.Solve(p[0], p[1])
		if err != nil {
			t.Fatal(err)
		}
		oligoMatchesDuo(t, fmt.Sprintf("solve(%v)", p), oo, od)
	}
	if duo.CacheLen() != oli.CacheLen() {
		t.Fatalf("cache lengths diverge: duo %d vs oligo %d", duo.CacheLen(), oli.CacheLen())
	}

	// Price competition and monopoly benchmark, on isolated workspaces.
	ped, err := duo.PriceEquilibrium(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	peo, err := oli.PriceEquilibrium(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	oligoMatchesDuo(t, "price equilibrium", peo, ped)

	pd, wd, sd, err := duo.MonopolyBenchmark(2)
	if err != nil {
		t.Fatal(err)
	}
	po, wo, so, err := oli.MonopolyBenchmark(2)
	if err != nil {
		t.Fatal(err)
	}
	bitsEq(t, "monopoly price", po, pd)
	bitsEq(t, "monopoly welfare", wo, wd)
	bitsEqSlice(t, "monopoly subsidies", so, sd)
}

// TestOligopolyN2SweepMatchesDuopoly20x20 is the sweep half of the
// acceptance pin: on the 20×20 price plane the N = 2 oligopoly sweep must
// reproduce the duopoly surface point for point (bitwise, which implies the
// required ≤1e-12), along with the argmax and the CSV export bytes.
func TestOligopolyN2SweepMatchesDuopoly20x20(t *testing.T) {
	grid := neutralnet.UniformGrid(0.6, 1.4, 20)
	dense, err := newDuopoly(t).SweepPrices(grid, grid)
	if err != nil {
		t.Fatal(err)
	}
	res, err := newOligopoly(t, []float64{0.5, 0.5}).SweepPrices(grid, grid)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 400 {
		t.Fatalf("surface has %d points", res.Len())
	}
	for i := range grid {
		for j := range grid {
			oligoMatchesDuo(t, fmt.Sprintf("point (%d,%d)", i, j), res.At(i, j), dense.Outcomes[i][j])
		}
	}
	oligoMatchesDuo(t, "argmax", res.ArgmaxTotalRevenue(), dense.ArgmaxTotalRevenue())
	if res.CSV() != dense.CSV() {
		t.Fatal("N=2 CSV export differs from the duopoly CSV export")
	}
}

// oligopolyGrids builds the N-dimensional test hypercubes: N = 3 → 5×4×3,
// N = 4 → 3×3×2×2.
func oligopolyGrids(n int) [][]float64 {
	switch n {
	case 3:
		return [][]float64{
			neutralnet.UniformGrid(0.6, 1.4, 5),
			neutralnet.UniformGrid(0.7, 1.3, 4),
			neutralnet.UniformGrid(0.8, 1.2, 3),
		}
	case 4:
		return [][]float64{
			neutralnet.UniformGrid(0.6, 1.4, 3),
			neutralnet.UniformGrid(0.7, 1.3, 3),
			neutralnet.UniformGrid(0.8, 1.2, 2),
			neutralnet.UniformGrid(0.9, 1.1, 2),
		}
	default:
		panic("unsupported test dimensionality")
	}
}

func equalMu(n int) []float64 {
	mu := make([]float64, n)
	for k := range mu {
		mu[k] = 1.0 / float64(n)
	}
	return mu
}

// TestOligopolySweepDeterministicAcrossWorkers pins the acceptance
// determinism bar at real dimensionality: N = 3 and N = 4 hypercube sweeps
// are bit-identical at 1, 4 and 9 workers (the suite runs under -race and
// -count=2 in CI).
func TestOligopolySweepDeterministicAcrossWorkers(t *testing.T) {
	for _, n := range []int{3, 4} {
		grids := oligopolyGrids(n)
		var ref *neutralnet.OligopolySweepResult
		for _, workers := range []int{1, 4, 9} {
			res, err := newOligopoly(t, equalMu(n), neutralnet.WithWorkers(workers)).SweepPrices(grids...)
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = res
				continue
			}
			for rank := range res.Outcomes {
				a, b := res.Outcomes[rank], ref.Outcomes[rank]
				bitsEqSlice(t, fmt.Sprintf("N=%d workers=%d rank=%d S", n, workers, rank), a.S, b.S)
				bitsEqSlice(t, fmt.Sprintf("N=%d workers=%d rank=%d Phi", n, workers, rank), a.Phi, b.Phi)
				bitsEqSlice(t, fmt.Sprintf("N=%d workers=%d rank=%d Revenue", n, workers, rank), a.Revenue, b.Revenue)
				bitsEq(t, fmt.Sprintf("N=%d workers=%d rank=%d Welfare", n, workers, rank), a.Welfare, b.Welfare)
			}
		}
	}
}

// TestOligopolySweepDeterministicAcrossHistory pins the second half of the
// sweep contract: the surface is independent of the session's solve
// history — a session that has already solved unrelated points sweeps the
// same bits as a fresh one.
func TestOligopolySweepDeterministicAcrossHistory(t *testing.T) {
	grids := oligopolyGrids(3)
	fresh, err := newOligopoly(t, equalMu(3)).SweepPrices(grids...)
	if err != nil {
		t.Fatal(err)
	}
	dirty := newOligopoly(t, equalMu(3))
	for _, p := range [][]float64{{2, 0.1, 1.3}, {0.2, 1.9, 0.4}} {
		if _, err := dirty.Solve(p...); err != nil {
			t.Fatal(err)
		}
	}
	res, err := dirty.SweepPrices(grids...)
	if err != nil {
		t.Fatal(err)
	}
	for rank := range res.Outcomes {
		bitsEqSlice(t, fmt.Sprintf("rank=%d S", rank), res.Outcomes[rank].S, fresh.Outcomes[rank].S)
		bitsEqSlice(t, fmt.Sprintf("rank=%d Phi", rank), res.Outcomes[rank].Phi, fresh.Outcomes[rank].Phi)
	}
}

// TestOligopolySessionCacheFIFO checks the bounded price-vector-keyed
// cache: eviction is strictly insertion-ordered, re-solving a resident
// vector refreshes its position, and a sweep leaves the path tail resident.
func TestOligopolySessionCacheFIFO(t *testing.T) {
	s := newOligopoly(t, equalMu(3), neutralnet.WithCache(2))
	pts := [][]float64{{1, 1, 1}, {1.1, 1, 1}, {1.2, 1, 1}}
	for _, p := range pts {
		if _, err := s.Solve(p...); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.CacheLen(); n != 2 {
		t.Fatalf("cache len %d, want 2", n)
	}
	keys := s.CachedPrices()
	if !reflect.DeepEqual(keys[0], pts[1]) || !reflect.DeepEqual(keys[1], pts[2]) {
		t.Fatalf("FIFO order %v, want [%v %v]", keys, pts[1], pts[2])
	}
	// A cache hit must not disturb the FIFO order...
	if _, err := s.Solve(pts[1]...); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.CachedPrices(), keys) {
		t.Fatal("cache hit disturbed FIFO order")
	}
	// ...and a sweep leaves the last cap path points resident.
	grids := [][]float64{{0.8, 0.9}, {1.0}, {1.0}}
	res, err := s.SweepPrices(grids...)
	if err != nil {
		t.Fatal(err)
	}
	keys = s.CachedPrices()
	if len(keys) != 2 {
		t.Fatalf("cache len %d after sweep", len(keys))
	}
	// Snake tail of the 2×1×1 path is rank 1 then rank... the last two
	// path points are (0.8,1,1) then (0.9,1,1), oldest-first.
	if !reflect.DeepEqual(keys[1], res.Outcomes[res.Len()-1].P) {
		t.Fatalf("newest cache key %v is not the sweep tail", keys[1])
	}
	hit, err := s.Solve(keys[1]...)
	if err != nil {
		t.Fatal(err)
	}
	bitsEqSlice(t, "cached tail point", hit.S, res.At(1, 0, 0).S)
}

// TestOligopolyPriceEquilibriumIsolated pins that the N = 3 price
// competition leaves the session cache and warm chain untouched.
func TestOligopolyPriceEquilibriumIsolated(t *testing.T) {
	s := newOligopoly(t, equalMu(3))
	want, err := newOligopoly(t, equalMu(3)).Solve(1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.PriceEquilibrium(2, 3); err != nil {
		t.Fatal(err)
	}
	if n := s.CacheLen(); n != 0 {
		t.Fatalf("price equilibrium left %d cache entries", n)
	}
	got, err := s.Solve(1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	bitsEqSlice(t, "post-competition solve S", got.S, want.S)
	bitsEqSlice(t, "post-competition solve Phi", got.Phi, want.Phi)
}

// TestOligopolyValidation covers the session construction and call-shape
// error paths.
func TestOligopolyValidation(t *testing.T) {
	eng, err := neutralnet.NewEngine(duopolySystem())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Oligopoly(nil, 3, 1); err == nil {
		t.Fatal("empty capacity vector accepted")
	}
	if _, err := eng.Oligopoly([]float64{0.5, -0.1}, 3, 1); err == nil {
		t.Fatal("negative capacity accepted")
	}
	s, err := eng.Oligopoly([]float64{0.4, 0.3, 0.3}, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Solve(1, 1); err == nil {
		t.Fatal("price-count mismatch accepted")
	}
	if _, err := s.SweepPrices([]float64{1}, []float64{1}); err == nil {
		t.Fatal("grid-count mismatch accepted")
	}
	if _, err := s.SweepPrices([]float64{1}, nil, []float64{1}); err == nil {
		t.Fatal("empty grid accepted")
	}
	if _, err := s.PriceEquilibrium(0, 0); err == nil {
		t.Fatal("pMax = 0 accepted")
	}
}

// TestOligopolySolverStats checks the telemetry plumbing end-to-end: under
// WithSolver(Auto) an N = 3 sweep records branch decisions from every
// worker into the session's counters.
func TestOligopolySolverStats(t *testing.T) {
	s := newOligopoly(t, equalMu(3), neutralnet.WithSolver(neutralnet.Auto), neutralnet.WithWorkers(4))
	if s.SolverStats().Total() != 0 {
		t.Fatal("fresh session has nonzero solver stats")
	}
	if _, err := s.SweepPrices(oligopolyGrids(3)...); err != nil {
		t.Fatal(err)
	}
	if s.SolverStats().Total() == 0 {
		t.Fatal("auto sweep recorded no branch decisions")
	}
	// A non-auto session records nothing.
	gs := newOligopoly(t, equalMu(3))
	if _, err := gs.Solve(1, 1, 1); err != nil {
		t.Fatal(err)
	}
	if gs.SolverStats().Total() != 0 {
		t.Fatal("gauss-seidel session recorded auto branches")
	}
}

// TestOligopolyCacheKeyFoldsNegativeZero pins the generalized cache key
// against the latent 2-D assumption audit: the duopoly's [2]float64 map key
// compares with ==, under which −0 and +0 are the same price — the
// oligopoly's bit-encoded vector key must fold them too, so a −0 price hits
// the +0 entry instead of duplicating it.
func TestOligopolyCacheKeyFoldsNegativeZero(t *testing.T) {
	s := newOligopoly(t, equalMu(3))
	out1, err := s.Solve(0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	out2, err := s.Solve(math.Copysign(0, -1), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.CacheLen() != 1 {
		t.Fatalf("cache len %d: −0 price missed the +0 entry", s.CacheLen())
	}
	bitsEqSlice(t, "−0 cache hit S", out2.S, out1.S)
}

// TestOligopolySweepResultOwnsGrids pins the defensive copies: mutating the
// caller's grid slices after the sweep must not corrupt the result.
func TestOligopolySweepResultOwnsGrids(t *testing.T) {
	g1 := []float64{0.9, 1.1}
	g2 := []float64{1.0}
	g3 := []float64{1.0}
	res, err := newOligopoly(t, equalMu(3)).SweepPrices(g1, g2, g3)
	if err != nil {
		t.Fatal(err)
	}
	g1[0] = -7
	if res.Grids[0][0] != 0.9 {
		t.Fatal("result aliases the caller's grid slice")
	}
}
